//! The benchmark suite: substrate micro-benchmarks and registry-workload
//! macro runs.
//!
//! Micro-benchmarks time the simulator's hot paths in isolation — cache
//! lookup, NoC flit routing, scoreboard issue, DRAM queueing — per call,
//! out of any simulation context. Macro benchmarks run every registered
//! workload end-to-end (baseline variant) and report simulated kilocycles
//! per host second, the figure of merit for an execution-driven
//! simulator, plus a per-phase host-time breakdown when profiling is
//! compiled in.
//!
//! Benchmark ids are stable (`micro/...`, `macro/<workload>`): they are
//! the join key for baseline comparison, so renaming one orphans its
//! baseline entry.

use levi_sim::cache::CacheBank;
use levi_sim::dram::Dram;
use levi_sim::engine::WindowFu;
use levi_sim::noc::Noc;
use levi_sim::{MachineConfig, Stats};
use levi_workloads::harness::{RunEnv, ScaleKind};
use levi_workloads::REGISTRY;
use std::hint::black_box;

use crate::measure::{bench_macro, bench_micro, BenchOpts, Measurement, RepOutcome};

/// Suite configuration: scale, repetition counts, and an id filter.
#[derive(Clone, Debug, Default)]
pub struct PerfCfg {
    /// Reduced iteration counts and quick workload scales.
    pub quick: bool,
    /// Case-insensitive substring filter on benchmark ids.
    pub filter: Option<String>,
    /// Override for [`BenchOpts::rounds`].
    pub rounds: Option<u32>,
    /// Override for [`BenchOpts::reps`].
    pub reps: Option<u32>,
    /// Override for [`BenchOpts::warmup`].
    pub warmup: Option<u32>,
}

impl PerfCfg {
    /// The effective repetition counts after overrides.
    pub fn opts(&self) -> BenchOpts {
        let mut o = if self.quick {
            BenchOpts::quick()
        } else {
            BenchOpts::full()
        };
        if let Some(r) = self.rounds {
            o.rounds = r.max(1);
        }
        if let Some(r) = self.reps {
            o.reps = r.max(1);
        }
        if let Some(w) = self.warmup {
            o.warmup = w;
        }
        o
    }

    /// Repetition counts for the fastest micro-benchmarks (single-digit
    /// nanoseconds per call: `cache_probe_hit`, `scoreboard_issue`).
    ///
    /// At that scale one stray scheduler preemption inflates a whole rep
    /// batch — the committed trajectory once recorded a 3× outlier round
    /// (12.0 ns vs a 4.1 ns median) for `scoreboard_issue` — which
    /// desensitizes the noise-aware gate by bloating the per-round MAD.
    /// Extra warmup and more reps per round let the round medians shrug
    /// off a single bad batch. Explicit `--warmup`/`--reps` overrides
    /// still win: this only adjusts the defaults.
    fn fast_micro_opts(&self) -> BenchOpts {
        let mut o = self.opts();
        if self.warmup.is_none() {
            o.warmup = o.warmup.max(4);
        }
        if self.reps.is_none() {
            o.reps = o.reps.max(9);
        }
        o
    }

    fn keeps(&self, id: &str) -> bool {
        match &self.filter {
            None => true,
            Some(f) => id.to_ascii_lowercase().contains(&f.to_ascii_lowercase()),
        }
    }

    fn micro_iters(&self, full: u64) -> u64 {
        if self.quick {
            (full / 8).max(1)
        } else {
            full
        }
    }
}

/// Runs the (filtered) suite, returning measurements in suite order:
/// micro-benchmarks first, then one macro benchmark per registry
/// workload.
pub fn run_suite(cfg: &PerfCfg) -> Vec<Measurement> {
    let opts = cfg.opts();
    let mut out = Vec::new();

    if cfg.keeps("micro/cache_probe_hit") {
        let mc = MachineConfig::paper_default();
        let mut bank = CacheBank::new(&mc.llc);
        bank.insert(0x1234, &[]);
        out.push(bench_micro(
            "micro/cache_probe_hit",
            cfg.fast_micro_opts(),
            cfg.micro_iters(500_000),
            || {
                black_box(bank.probe(black_box(0x1234)).is_some());
            },
        ));
    }

    if cfg.keeps("micro/cache_insert_evict") {
        let mc = MachineConfig::paper_default();
        let mut bank = CacheBank::new(&mc.l1);
        let mut line = 0u64;
        out.push(bench_micro(
            "micro/cache_insert_evict",
            opts,
            cfg.micro_iters(500_000),
            || {
                line += 1;
                black_box(bank.insert(black_box(line), &[]).1.is_some());
            },
        ));
    }

    if cfg.keeps("micro/noc_flit_hop") {
        let mc = MachineConfig::paper_default();
        let (cols, rows) = mc.mesh_dims();
        let mut noc = Noc::new(cols, rows, mc.noc);
        let mut stats = Stats::new();
        let corner = cols * rows - 1;
        let mut t = 0u64;
        out.push(bench_micro(
            "micro/noc_flit_hop",
            opts,
            cfg.micro_iters(500_000),
            || {
                t += 10;
                black_box(noc.send(0, corner, 72, t, &mut stats));
            },
        ));
    }

    if cfg.keeps("micro/scoreboard_issue") {
        // The engine FU scoreboard: a sliding-window reservation per
        // issued instruction.
        let mut fu = WindowFu::new(4);
        let mut t = 0u64;
        out.push(bench_micro(
            "micro/scoreboard_issue",
            cfg.fast_micro_opts(),
            cfg.micro_iters(500_000),
            || {
                t += 1;
                black_box(fu.reserve(black_box(t)));
            },
        ));
    }

    if cfg.keeps("micro/dram_queue") {
        let mc = MachineConfig::paper_default();
        let mut dram = Dram::new(mc.mem);
        let mut stats = Stats::new();
        let mut line = 0u64;
        let mut now = 0u64;
        out.push(bench_micro(
            "micro/dram_queue",
            opts,
            cfg.micro_iters(500_000),
            || {
                // Strictly increasing lines never hit the FIFO cache, so
                // every call exercises the queue + service path.
                line += 1;
                now += 4;
                black_box(dram.access_line(black_box(line), now, &mut stats));
            },
        ));
    }

    let scale = if cfg.quick {
        ScaleKind::Quick
    } else {
        ScaleKind::Paper
    };
    for w in REGISTRY {
        let id = format!("macro/{}", w.name());
        if !cfg.keeps(&id) {
            continue;
        }
        let label = *w
            .variant_labels()
            .first()
            .expect("registry workloads have variants");
        // Input construction is excluded from timing: we measure the
        // simulator, not the input generator.
        let prepared = w.prepare(scale);
        let env = RunEnv::default();
        out.push(bench_macro(&id, opts, || {
            // Drop any phase residue earlier host work left on this
            // thread, so the rep's attribution is its own.
            let _ = levi_sim::perf::take();
            let outcome = prepared
                .run(label, &env)
                .expect_done("perf macro benchmark");
            let mut rep = RepOutcome {
                sim_cycles: outcome.metrics.cycles,
                phases: outcome.metrics.stats.host_phases.clone(),
            };
            // Post-run teardown (flushes after the last `Machine::run`)
            // is still this rep's time.
            rep.phases.merge(&levi_sim::perf::take());
            rep
        }));
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_selects_by_substring() {
        let cfg = PerfCfg {
            quick: true,
            filter: Some("SCOREBOARD".into()),
            rounds: Some(1),
            reps: Some(1),
            warmup: Some(0),
        };
        let ms = run_suite(&cfg);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].id, "micro/scoreboard_issue");
        assert!(ms[0].median > 0.0);
    }

    #[test]
    fn opts_respect_quick_and_overrides() {
        let quick = PerfCfg {
            quick: true,
            ..PerfCfg::default()
        };
        assert_eq!(quick.opts().rounds, BenchOpts::quick().rounds);
        let tuned = PerfCfg {
            rounds: Some(7),
            reps: Some(0),
            ..PerfCfg::default()
        };
        assert_eq!(tuned.opts().rounds, 7);
        assert_eq!(tuned.opts().reps, 1, "reps clamp to at least 1");
        assert_eq!(quick.micro_iters(800), 100);
        assert_eq!(PerfCfg::default().micro_iters(800), 800);
    }

    #[test]
    fn fast_micros_get_extra_warmup_and_reps_unless_overridden() {
        let cfg = PerfCfg::default();
        let fast = cfg.fast_micro_opts();
        assert!(fast.warmup >= 4);
        assert!(fast.reps >= 9);
        assert_eq!(fast.rounds, cfg.opts().rounds, "rounds are untouched");
        let pinned = PerfCfg {
            warmup: Some(1),
            reps: Some(2),
            ..PerfCfg::default()
        };
        let o = pinned.fast_micro_opts();
        assert_eq!(o.warmup, 1, "explicit warmup override wins");
        assert_eq!(o.reps, 2, "explicit reps override wins");
    }

    #[test]
    fn macro_bench_runs_a_registry_workload() {
        let cfg = PerfCfg {
            quick: true,
            filter: Some("macro/micro".into()),
            rounds: Some(1),
            reps: Some(1),
            warmup: Some(0),
        };
        let ms = run_suite(&cfg);
        assert_eq!(ms.len(), 1, "exactly the 'micro' workload macro bench");
        let m = &ms[0];
        assert_eq!(m.kind, "macro");
        assert!(m.sim_cycles > 0);
        assert!(m.kips > 0.0);
        if cfg!(feature = "self-profile") {
            assert!(
                !m.phases.is_empty(),
                "profiling is on, phases must be attributed: {m:?}"
            );
        } else {
            assert!(m.phases.is_empty());
        }
    }
}
