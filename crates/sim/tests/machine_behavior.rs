//! Behavioral tests of the machine's run loop, timing model, and NDC
//! paradigms, exercised entirely through the crate's public API. These
//! lived inside `machine.rs` before the simulator was split into layered
//! modules (`sched` / `core_pipe` / `ndc_host` / `invoke`); keeping them
//! external pins the public surface the split must preserve.

use std::sync::Arc;

use levi_isa::{ActionId, FuncId, Location, Memory, Program, ProgramBuilder, Reg, RmwOp};
use levi_sim::ndc::{MorphLevel, MorphRegion, WaitCond};
use levi_sim::{
    EngineId, EngineLevel, Machine, MachineConfig, ParkOwner, RunError, SimError, StreamMode,
};

fn small_cfg() -> MachineConfig {
    let mut cfg = MachineConfig::with_tiles(4);
    cfg.prefetcher = false;
    cfg
}

#[test]
fn single_thread_store_load() {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main");
    let (p, v, r) = (Reg(1), Reg(2), Reg(3));
    f.imm(p, 0x1000).imm(v, 77);
    f.st8(p, 0, v);
    f.ld8(r, p, 0);
    f.mov(Reg(0), r).halt();
    let func = f.finish();
    let prog = Arc::new(pb.finish().unwrap());

    let mut m = Machine::try_new(small_cfg()).unwrap();
    m.spawn_thread(0, prog, func, &[]).unwrap();
    let res = m.run().unwrap();
    assert!(
        res.cycles > 100,
        "cold miss pays DRAM latency: {}",
        res.cycles
    );
    assert_eq!(m.mem().read_u64(0x1000), 77);
    assert!(m.stats().core_instrs >= 5);
}

#[test]
fn parallel_threads_on_different_cores() {
    // Each thread sums a private array; runs should overlap.
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("sum");
    let (base, n, acc, i, v) = (Reg(0), Reg(1), Reg(2), Reg(3), Reg(4));
    let top = f.label();
    let out = f.label();
    f.imm(acc, 0).imm(i, 0);
    f.bind(top);
    f.bge_u(i, n, out);
    f.ld8(v, base, 0);
    f.add(acc, acc, v);
    f.addi(base, base, 8);
    f.addi(i, i, 1);
    f.jmp(top);
    f.bind(out);
    f.mov(Reg(0), acc).halt();
    let func = f.finish();
    let prog = Arc::new(pb.finish().unwrap());

    let mut m = Machine::try_new(small_cfg()).unwrap();
    for t in 0..4u32 {
        let base = 0x10_0000 + t as u64 * 0x1000;
        for k in 0..64u64 {
            m.mem_mut().write_u64(base + 8 * k, k);
        }
        m.spawn_thread(t, prog.clone(), func, &[base, 64]).unwrap();
    }
    let res = m.run().unwrap();
    assert!(res.cycles > 0);
    assert!(m.stats().core_instrs > 4 * 64 * 5);
    assert!(m.stats().l1.hits > 0, "spatial locality in the arrays");
}

#[test]
fn fenced_rmw_is_slower_than_relaxed() {
    fn build(relaxed: bool) -> (Arc<Program>, FuncId) {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("updates");
        let (p, v, i, n, old) = (Reg(0), Reg(1), Reg(2), Reg(3), Reg(4));
        f.imm(v, 1).imm(i, 0).imm(n, 64);
        let top = f.label();
        let out = f.label();
        f.bind(top);
        f.bge_u(i, n, out);
        if relaxed {
            f.rmw_relaxed(RmwOp::Add, old, p, v, levi_isa::MemWidth::B8);
        } else {
            f.rmw_fenced(RmwOp::Add, old, p, v, levi_isa::MemWidth::B8);
        }
        // Independent work that fences serialize against.
        f.ld8(Reg(5), p, 64);
        f.addi(i, i, 1);
        f.jmp(top);
        f.bind(out);
        f.halt();
        let func = f.finish();
        (Arc::new(pb.finish().unwrap()), func)
    }
    let run = |relaxed: bool| {
        let (prog, func) = build(relaxed);
        let mut m = Machine::try_new(small_cfg()).unwrap();
        m.spawn_thread(0, prog, func, &[0x2000]).unwrap();
        let r = m.run().unwrap();
        (r.cycles, m.mem().read_u64(0x2000), m.stats().fences)
    };
    let (fenced_cycles, fenced_val, fences) = run(false);
    let (relaxed_cycles, relaxed_val, no_fences) = run(true);
    assert_eq!(fenced_val, 64);
    assert_eq!(relaxed_val, 64);
    assert_eq!(fences, 64);
    assert_eq!(no_fences, 0);
    assert!(
        fenced_cycles > relaxed_cycles,
        "fences must cost cycles: {fenced_cycles} vs {relaxed_cycles}"
    );
}

#[test]
fn rmw_ping_pong_between_cores() {
    // Two cores hammer the same counter with relaxed RMWs.
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("hammer");
    let (p, v, i, n, old) = (Reg(0), Reg(1), Reg(2), Reg(3), Reg(4));
    f.imm(v, 1).imm(i, 0).imm(n, 32);
    let top = f.label();
    let out = f.label();
    f.bind(top);
    f.bge_u(i, n, out);
    f.rmw_relaxed(RmwOp::Add, old, p, v, levi_isa::MemWidth::B8);
    f.addi(i, i, 1);
    f.jmp(top);
    f.bind(out);
    f.halt();
    let func = f.finish();
    let prog = Arc::new(pb.finish().unwrap());

    // A tiny quantum interleaves the two cores finely, exposing the
    // line's ownership ping-pong.
    let mut cfg = small_cfg();
    cfg.quantum = 4;
    let mut m = Machine::try_new(cfg).unwrap();
    m.spawn_thread(0, prog.clone(), func, &[0x3000]).unwrap();
    m.spawn_thread(1, prog, func, &[0x3000]).unwrap();
    m.run().unwrap();
    assert_eq!(m.mem().read_u64(0x3000), 64, "no update lost");
    assert!(
        m.stats().ownership_transfers > 5,
        "ping-pong visible: {}",
        m.stats().ownership_transfers
    );
}

#[test]
fn invoke_runs_action_on_engine_and_future_returns() {
    let mut pb = ProgramBuilder::new();
    // Action: add r1 to the actor's u64, send new value to future r2.
    let action = {
        let mut f = pb.function("add_action");
        let (actor, amt, fut, v) = (Reg(0), Reg(1), Reg(2), Reg(3));
        f.ld8(v, actor, 0);
        f.add(v, v, amt);
        f.st8(actor, 0, v);
        f.future_send(fut, v);
        f.halt();
        f.finish()
    };
    let mut mn = pb.function("main");
    let (actor, fut, amt, r) = (Reg(1), Reg(2), Reg(3), Reg(4));
    mn.imm(actor, 0x4000).imm(fut, 0x5000).imm(amt, 5);
    mn.invoke_future(actor, ActionId(0), &[amt, fut], fut, Location::Dynamic);
    mn.future_wait(r, fut);
    mn.mov(Reg(0), r).halt();
    let main = mn.finish();
    let prog = Arc::new(pb.finish().unwrap());

    let mut m = Machine::try_new(small_cfg()).unwrap();
    m.mem_mut().write_u64(0x4000, 37);
    m.hw.ndc.actions.register(ActionId(0), prog.clone(), action);
    m.spawn_thread(0, prog, main, &[]).unwrap();
    m.run().unwrap();
    assert_eq!(m.mem().read_u64(0x4000), 42);
    assert_eq!(m.stats().invokes, 1);
    assert!(m.stats().engine_instrs >= 4);
}

#[test]
fn invoke_buffer_backpressure_applies() {
    // Fire-and-forget invokes far faster than engines can run them:
    // the invoke buffer must throttle the core, not error.
    let mut pb = ProgramBuilder::new();
    let action = {
        let mut f = pb.function("slow_action");
        let (actor, v, i, n) = (Reg(0), Reg(1), Reg(2), Reg(3));
        f.imm(i, 0).imm(n, 20);
        let top = f.label();
        let out = f.label();
        f.bind(top);
        f.bge_u(i, n, out);
        f.ld8(v, actor, 0);
        f.addi(i, i, 1);
        f.jmp(top);
        f.bind(out);
        f.halt();
        f.finish()
    };
    let mut mn = pb.function("main");
    let (actor, i, n) = (Reg(1), Reg(2), Reg(3));
    mn.imm(actor, 0x6000).imm(i, 0).imm(n, 100);
    let top = mn.label();
    let out = mn.label();
    mn.bind(top);
    mn.bge_u(i, n, out);
    mn.invoke(actor, ActionId(0), &[], Location::Remote);
    mn.addi(i, i, 1);
    mn.jmp(top);
    mn.bind(out);
    mn.halt();
    let main = mn.finish();
    let prog = Arc::new(pb.finish().unwrap());

    let mut m = Machine::try_new(small_cfg()).unwrap();
    m.hw.ndc.actions.register(ActionId(0), prog.clone(), action);
    m.spawn_thread(0, prog, main, &[]).unwrap();
    let res = m.run().unwrap();
    assert_eq!(m.stats().invokes, 100);
    assert!(res.cycles > 100);
}

#[test]
fn stream_push_pop_round_trip() {
    // Producer pushes 0..N on an engine; consumer reads each entry from
    // the phantom/buffer range and pops.
    let mut pb = ProgramBuilder::new();
    let producer = {
        let mut f = pb.function("producer");
        let (handle, i, n) = (Reg(0), Reg(1), Reg(2));
        f.imm(i, 0).imm(n, 100);
        let top = f.label();
        let out = f.label();
        f.bind(top);
        f.bge_u(i, n, out);
        f.push(handle, i);
        f.addi(i, i, 1);
        f.jmp(top);
        f.bind(out);
        f.halt();
        f.finish()
    };
    let consumer = {
        let mut f = pb.function("consumer");
        // r0 = handle, r1 = buffer base, r2 = capacity, r3 = n
        let (handle, base, cap, n) = (Reg(0), Reg(1), Reg(2), Reg(3));
        let (i, idx, addr, v, acc) = (Reg(4), Reg(5), Reg(6), Reg(7), Reg(8));
        f.imm(i, 0).imm(acc, 0);
        let top = f.label();
        let out = f.label();
        f.bind(top);
        f.bge_u(i, n, out);
        f.remu(idx, i, cap);
        f.muli(idx, idx, 8);
        f.add(addr, base, idx);
        f.ld8(v, addr, 0);
        f.pop(handle);
        f.add(acc, acc, v);
        f.addi(i, i, 1);
        f.jmp(top);
        f.bind(out);
        f.mov(Reg(0), acc).halt();
        f.finish()
    };
    let prog = Arc::new(pb.finish().unwrap());

    let mut m = Machine::try_new(small_cfg()).unwrap();
    let buffer = 0x8000u64;
    let cap = 16u64;
    let engine = EngineId {
        tile: 0,
        level: EngineLevel::Llc,
    };
    let sid = m
        .create_stream(buffer, 8, cap, engine, 0, StreamMode::RunAhead)
        .unwrap();
    // Consumer reads via a stream-backed L2 morph over the buffer.
    m.hw.ndc.register_morph(MorphRegion {
        base: buffer,
        bound: buffer + cap * 8,
        level: MorphLevel::L2,
        obj_size: 8,
        ctor: None,
        dtor: None,
        view: 0,
        stream: Some(sid),
    });
    m.spawn_engine_task(engine, prog.clone(), producer, &[sid.0 as u64], Some(sid));
    m.spawn_thread(0, prog, consumer, &[sid.0 as u64, buffer, cap, 100])
        .unwrap();
    m.run().unwrap();
    let expect: u64 = (0..100).sum();
    // The consumer's r0 is gone; check via stats instead + memory sum.
    assert_eq!(m.stats().stream_pushes, 100);
    assert_eq!(m.stats().stream_pops, 100);
    let _ = expect;
}

#[test]
fn deadlock_detected_for_never_filled_future() {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main");
    f.imm(Reg(1), 0x9000);
    f.future_wait(Reg(0), Reg(1));
    f.halt();
    let main = f.finish();
    let prog = Arc::new(pb.finish().unwrap());
    let mut m = Machine::try_new(small_cfg()).unwrap();
    m.spawn_thread(0, prog, main, &[]).unwrap();
    match m.run() {
        Err(ref e @ RunError::Deadlock(ref v)) => {
            assert_eq!(v.len(), 1);
            assert!(matches!(v[0].cond, WaitCond::FutureFill(0x9000)));
            assert!(matches!(v[0].owner, ParkOwner::Core(0)));
            // Display is one readable line per parked actor, not a
            // debug dump.
            let text = e.to_string();
            assert!(
                text.contains("actor 0 on core 0: waiting on future-fill @0x9000"),
                "{text}"
            );
            assert!(text.contains("parked"), "{text}");
            assert!(!text.contains("FutureFill"), "no Debug output: {text}");
        }
        other => panic!("expected deadlock, got {other:?}"),
    }
}

#[test]
fn watchdog_aborts_long_runs() {
    // A long (but finite) pointer-chase loop; with a tiny max_cycles
    // the watchdog must fire long before completion.
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main");
    let (p, i, n, v) = (Reg(1), Reg(2), Reg(3), Reg(4));
    f.imm(p, 0x10000).imm(i, 0).imm(n, 10_000);
    let top = f.label();
    let out = f.label();
    f.bind(top);
    f.bge_u(i, n, out);
    f.ld8(v, p, 0);
    f.addi(p, p, 64);
    f.addi(i, i, 1);
    f.jmp(top);
    f.bind(out);
    f.halt();
    let main = f.finish();
    let prog = Arc::new(pb.finish().unwrap());

    let mut cfg = small_cfg();
    cfg.max_cycles = 5_000;
    let mut m = Machine::try_new(cfg).unwrap();
    m.spawn_thread(0, prog.clone(), main, &[]).unwrap();
    match m.run() {
        Err(RunError::Watchdog { limit, at }) => {
            assert_eq!(limit, 5_000);
            assert!(at > 5_000);
        }
        other => panic!("expected watchdog, got {other:?}"),
    }
    // Without the watchdog the same program completes.
    let mut m = Machine::try_new(small_cfg()).unwrap();
    m.spawn_thread(0, prog, main, &[]).unwrap();
    assert!(m.run().is_ok());
}

#[test]
fn spawn_and_stream_errors_are_typed() {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main");
    f.halt();
    let main = f.finish();
    let prog = Arc::new(pb.finish().unwrap());
    let mut m = Machine::try_new(small_cfg()).unwrap();
    assert_eq!(
        m.spawn_thread(99, prog.clone(), main, &[]),
        Err(SimError::CoreOutOfRange { core: 99, tiles: 4 })
    );
    assert_eq!(
        m.spawn_thread(0, prog.clone(), main, &[0; 9]),
        Err(SimError::TooManyArgs { given: 9, max: 8 })
    );
    let engine = EngineId {
        tile: 0,
        level: EngineLevel::Llc,
    };
    assert_eq!(
        m.create_stream(0x8000, 4, 16, engine, 0, StreamMode::RunAhead),
        Err(SimError::UnsupportedEntrySize { entry_size: 4 })
    );
    assert_eq!(
        m.create_stream(0x8000, 8, 0, engine, 0, StreamMode::RunAhead),
        Err(SimError::ZeroStreamCapacity)
    );
    // A failed spawn must not leave a live thread behind.
    m.spawn_thread(0, prog, main, &[]).unwrap();
    assert!(m.run().is_ok());
}

#[test]
fn unregistered_action_is_a_run_fault() {
    let mut pb = ProgramBuilder::new();
    let mut mn = pb.function("main");
    let actor = Reg(1);
    mn.imm(actor, 0x6000);
    mn.invoke(actor, ActionId(7), &[], Location::Remote);
    mn.halt();
    let main = mn.finish();
    let prog = Arc::new(pb.finish().unwrap());
    let mut m = Machine::try_new(small_cfg()).unwrap();
    m.spawn_thread(0, prog, main, &[]).unwrap();
    match m.run() {
        Err(RunError::Fault(SimError::UnknownAction(id))) => assert_eq!(id, ActionId(7)),
        other => panic!("expected fault, got {other:?}"),
    }
}

#[test]
fn faulted_engine_backs_off_then_falls_back() {
    use levi_sim::{CycleWindow, FaultPlan};
    // Same invoke workload as invoke_runs_action_on_engine..., but
    // every engine refuses for the whole run: the invoke must retry
    // with backoff, fall back to the core, and still compute the right
    // answer.
    let mut pb = ProgramBuilder::new();
    let action = {
        let mut f = pb.function("add_action");
        let (actor, amt, fut, v) = (Reg(0), Reg(1), Reg(2), Reg(3));
        f.ld8(v, actor, 0);
        f.add(v, v, amt);
        f.st8(actor, 0, v);
        f.future_send(fut, v);
        f.halt();
        f.finish()
    };
    let mut mn = pb.function("main");
    let (actor, fut, amt, r) = (Reg(1), Reg(2), Reg(3), Reg(4));
    mn.imm(actor, 0x4000).imm(fut, 0x5000).imm(amt, 5);
    mn.invoke_future(actor, ActionId(0), &[amt, fut], fut, Location::Dynamic);
    mn.future_wait(r, fut);
    mn.mov(Reg(0), r).halt();
    let main = mn.finish();
    let prog = Arc::new(pb.finish().unwrap());

    let mut plan = FaultPlan::new(1).retry_budget(3).backoff(8, 64);
    for tile in 0..4 {
        for level in [EngineLevel::L2, EngineLevel::Llc] {
            plan = plan.add_engine_fault(EngineId { tile, level }, CycleWindow::new(0, u64::MAX));
        }
    }
    let mut m = Machine::try_new(small_cfg().faulted(plan)).unwrap();
    m.mem_mut().write_u64(0x4000, 37);
    m.hw.ndc.actions.register(ActionId(0), prog.clone(), action);
    m.spawn_thread(0, prog, main, &[]).unwrap();
    m.run().unwrap();
    assert_eq!(m.mem().read_u64(0x4000), 42, "fallback still computes");
    let s = m.stats();
    assert_eq!(s.fault_nack_retries, 3, "full retry budget consumed");
    assert_eq!(s.fault_fallbacks, 1);
    assert_eq!(s.invoke_nacks, 4, "3 retries + the final refusal");
    assert_eq!(s.invokes, 0, "nothing was offloaded");
    assert_eq!(s.fault_backoff.count(), 3);
    assert!(s.fault_degraded_cycles >= 8 + 16 + 32);
}

#[test]
fn trace_reaches_machine() {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main");
    f.imm(Reg(1), 123).trace(Reg(1)).halt();
    let main = f.finish();
    let prog = Arc::new(pb.finish().unwrap());
    let mut m = Machine::try_new(small_cfg()).unwrap();
    m.spawn_thread(0, prog, main, &[]).unwrap();
    m.run().unwrap();
    assert_eq!(m.traces(), &[123]);
}

#[test]
fn determinism_same_seed_same_cycles() {
    let build = || {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let (p, i, n, v) = (Reg(1), Reg(2), Reg(3), Reg(4));
        f.imm(p, 0x10000).imm(i, 0).imm(n, 200);
        let top = f.label();
        let out = f.label();
        f.bind(top);
        f.bge_u(i, n, out);
        f.ld8(v, p, 0);
        f.addi(p, p, 64);
        f.addi(i, i, 1);
        f.jmp(top);
        f.bind(out);
        f.halt();
        let func = f.finish();
        (Arc::new(pb.finish().unwrap()), func)
    };
    let run = || {
        let (prog, func) = build();
        let mut m = Machine::try_new(small_cfg()).unwrap();
        m.spawn_thread(0, prog.clone(), func, &[]).unwrap();
        m.spawn_thread(1, prog, func, &[]).unwrap();
        m.run().unwrap().cycles
    };
    assert_eq!(run(), run(), "simulation must be deterministic");
}

#[test]
fn sched_trace_category_records_placement_decisions() {
    // With trace_sched on, invoke-scheduler decisions appear in the
    // `sched` category; with plain `traced()` they must not (default
    // traced output stays byte-identical across simulator versions).
    let build = || {
        let mut pb = ProgramBuilder::new();
        let action = {
            let mut f = pb.function("touch");
            let (actor, v) = (Reg(0), Reg(1));
            f.ld8(v, actor, 0);
            f.halt();
            f.finish()
        };
        let mut mn = pb.function("main");
        let (actor, i, n) = (Reg(1), Reg(2), Reg(3));
        mn.imm(actor, 0x6000).imm(i, 0).imm(n, 40);
        let top = mn.label();
        let out = mn.label();
        mn.bind(top);
        mn.bge_u(i, n, out);
        mn.invoke(actor, ActionId(0), &[], Location::Dynamic);
        mn.addi(actor, actor, 4096);
        mn.addi(i, i, 1);
        mn.jmp(top);
        mn.bind(out);
        mn.halt();
        let main = mn.finish();
        (Arc::new(pb.finish().unwrap()), action, main)
    };
    let run = |cfg: MachineConfig| {
        let (prog, action, main) = build();
        let mut m = Machine::try_new(cfg).unwrap();
        m.hw.ndc.actions.register(ActionId(0), prog.clone(), action);
        m.spawn_thread(0, prog, main, &[]).unwrap();
        m.run().unwrap();
        (m.stats().invokes, m.stats().trace.to_chrome_json())
    };

    let (invokes, json) = run(small_cfg().sched_traced());
    assert_eq!(invokes, 40);
    assert!(json.contains("\"sched\""), "sched category exported");
    assert!(json.contains("sched.place"), "placement events recorded");

    let (_, plain) = run(small_cfg().traced());
    assert!(
        !plain.contains("sched.place"),
        "plain traced() must not emit sched events"
    );
}
