//! DRAM controllers, the per-controller FIFO line cache, and Leviathan's
//! cache↔DRAM address translation (object compaction, paper Sec. VI-A3).
//!
//! DRAM is modeled as fixed access latency plus a per-controller bandwidth
//! (service-rate) limit. Leviathan stores objects *padded* in the cache but
//! *compacted* in DRAM; the [`Translator`] implements the address
//! computation of Fig. 14, and the FIFO cache absorbs the extra accesses
//! when consecutive cache lines map into one DRAM line.

use crate::config::{MemConfig, LINE_SHIFT, LINE_SIZE};
use crate::fault::DramFault;
use crate::stats::Stats;
use crate::trace::{TraceCategory, TraceEvent, Track};

/// One entry of the LLC translation buffer (25 B each in Table IV).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TranslationEntry {
    /// First cache (padded) address of the region.
    pub cache_base: u64,
    /// One past the last cache address of the region.
    pub cache_bound: u64,
    /// First DRAM (compacted) address of the region.
    pub dram_base: u64,
    /// Padded object size as seen by the cache.
    pub padded_size: u64,
    /// Compacted object size as stored in DRAM.
    pub packed_size: u64,
}

impl TranslationEntry {
    /// Translates a single byte address from cache space to DRAM space.
    /// Padding bytes (beyond `packed_size` within an object) have no DRAM
    /// backing and return `None`.
    pub fn translate(&self, addr: u64) -> Option<u64> {
        debug_assert!(addr >= self.cache_base && addr < self.cache_bound);
        let rel = addr - self.cache_base;
        let idx = rel / self.padded_size;
        let off = rel % self.padded_size;
        if off < self.packed_size {
            Some(self.dram_base + idx * self.packed_size + off)
        } else {
            None
        }
    }
}

/// The translation table consulted on LLC misses and writebacks.
///
/// Addresses outside every registered region are identity-mapped (ordinary
/// data is stored uncompacted).
#[derive(Clone, Debug, Default)]
pub struct Translator {
    entries: Vec<TranslationEntry>,
}

impl Translator {
    /// Creates an empty (identity) translator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a compacted region.
    ///
    /// # Panics
    /// Panics if the region overlaps an existing one or has
    /// `packed_size > padded_size` or zero sizes.
    pub fn register(&mut self, entry: TranslationEntry) {
        assert!(entry.packed_size > 0 && entry.padded_size >= entry.packed_size);
        for e in &self.entries {
            assert!(
                entry.cache_bound <= e.cache_base || entry.cache_base >= e.cache_bound,
                "overlapping translation regions"
            );
        }
        self.entries.push(entry);
    }

    /// Removes the region starting at `cache_base`, if present.
    pub fn unregister(&mut self, cache_base: u64) {
        self.entries.retain(|e| e.cache_base != cache_base);
    }

    /// Number of registered regions (the hardware provisions 8; we allow
    /// more and report occupancy via this method).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no regions are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn entry_for(&self, addr: u64) -> Option<&TranslationEntry> {
        self.entries
            .iter()
            .find(|e| addr >= e.cache_base && addr < e.cache_bound)
    }

    /// Returns the distinct DRAM *lines* that back the cache line
    /// containing `addr` — usually one; two when a compacted object range
    /// straddles a DRAM line boundary. Padding-only spans contribute
    /// nothing.
    pub fn dram_lines_for(&self, cache_line: u64) -> DramLines {
        let base = cache_line << LINE_SHIFT;
        match self.entry_for(base) {
            None => DramLines::one(cache_line),
            Some(e) => {
                let mut out = DramLines::empty();
                // Translate the first and last backed byte of each object
                // slice within the line (clamped to the region's bound —
                // the tail line may extend past it).
                let mut a = base;
                let end = (base + LINE_SIZE).min(e.cache_bound);
                while a < end {
                    let rel = a - e.cache_base;
                    let off = rel % e.padded_size;
                    let obj_left = e.padded_size - off;
                    let span = obj_left.min(end - a);
                    if off < e.packed_size {
                        let first = e.translate(a).expect("backed byte");
                        let last_backed = a + span.min(e.packed_size - off) - 1;
                        let last = e.translate(last_backed).expect("backed byte");
                        out.add(first >> LINE_SHIFT);
                        out.add(last >> LINE_SHIFT);
                    }
                    a += span;
                }
                if out.len == 0 {
                    // Entire line is padding; it still round-trips through
                    // the controller as a zero-fill, modeled as one line.
                    out.add(base >> LINE_SHIFT);
                }
                out
            }
        }
    }
}

/// Up to four distinct DRAM lines backing one cache line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DramLines {
    lines: [u64; 4],
    len: usize,
}

impl DramLines {
    fn empty() -> Self {
        DramLines {
            lines: [0; 4],
            len: 0,
        }
    }

    fn one(line: u64) -> Self {
        DramLines {
            lines: [line, 0, 0, 0],
            len: 1,
        }
    }

    fn add(&mut self, line: u64) {
        if !self.as_slice().contains(&line) {
            assert!(self.len < 4, "cache line maps to >4 DRAM lines");
            self.lines[self.len] = line;
            self.len += 1;
        }
    }

    /// The DRAM lines as a slice.
    pub fn as_slice(&self) -> &[u64] {
        &self.lines[..self.len]
    }
}

/// The DRAM subsystem: N controllers, each with fixed latency, a service
/// rate, and a small FIFO line cache.
///
/// Per-controller state is struct-of-arrays: `busy_until` is one flat
/// array, and the FIFO line caches live in a single flat slab
/// (`fifo_buf`) with per-controller occupancy counts, oldest entry first —
/// the hit check is a contiguous scan of at most `fifo_cache_lines`
/// words.
#[derive(Clone, Debug)]
pub struct Dram {
    cfg: MemConfig,
    busy_until: Vec<u64>,
    /// FIFO line caches: controller `mc` owns
    /// `fifo_buf[mc*cap .. mc*cap + fifo_len[mc]]` (`cap` =
    /// `fifo_cache_lines`), oldest first.
    fifo_buf: Vec<u64>,
    fifo_len: Vec<u32>,
    /// Injected controller throttles, bucketed per controller in CSR form:
    /// controller `mc`'s faults are
    /// `fault_entries[fault_start[mc]..fault_start[mc+1]]` (empty unless a
    /// fault plan installed some).
    fault_start: Vec<u32>,
    fault_entries: Vec<DramFault>,
}

impl Dram {
    /// Creates the DRAM subsystem.
    pub fn new(cfg: MemConfig) -> Self {
        let mcs = cfg.controllers as usize;
        let cap = cfg.fifo_cache_lines as usize;
        Dram {
            busy_until: vec![0; mcs],
            fifo_buf: vec![0; mcs * cap],
            fifo_len: vec![0; mcs],
            fault_start: vec![0; mcs + 1],
            fault_entries: Vec::new(),
            cfg,
        }
    }

    /// Installs controller throttles from a fault plan, bucketed per
    /// controller. Faults naming controllers that don't exist are dropped
    /// (they could never fire).
    pub fn install_faults(&mut self, faults: Vec<DramFault>) {
        let mcs = self.busy_until.len();
        let mut entries = faults;
        entries.retain(|df| (df.controller as usize) < mcs);
        entries.sort_by_key(|df| df.controller);
        self.fault_start = vec![0; mcs + 1];
        for df in &entries {
            self.fault_start[df.controller as usize + 1] += 1;
        }
        for mc in 0..mcs {
            self.fault_start[mc + 1] += self.fault_start[mc];
        }
        self.fault_entries = entries;
    }

    #[inline]
    fn controller_of(&self, dram_line: u64) -> usize {
        (dram_line % self.cfg.controllers as u64) as usize
    }

    /// Accesses one DRAM line (read or writeback) at `now`; returns the
    /// completion time. FIFO-cache hits skip the DRAM access entirely.
    pub fn access_line(&mut self, dram_line: u64, now: u64, stats: &mut Stats) -> u64 {
        let mc = self.controller_of(dram_line);
        let cap = self.cfg.fifo_cache_lines as usize;
        let base = mc * cap;
        let n = self.fifo_len[mc] as usize;
        if self.fifo_buf[base..base + n].contains(&dram_line) {
            // FIFO-cache hit: resolved without entering the profiling
            // scope — burst-friendly workloads hit here far more often
            // than they queue, and the scan is a handful of compares.
            stats.mc_cache_hits += 1;
            stats.trace.record(|| {
                TraceEvent::instant(
                    now,
                    TraceCategory::Dram,
                    "dram.fifo_hit",
                    Track::Dram(mc as u32),
                    &[("line", dram_line)],
                )
            });
            return now + self.cfg.fifo_hit_latency;
        }
        crate::perf::prof_scope!(crate::perf::Phase::Dram);
        stats.count_dram();
        // Queue: the request waits from `now` until the controller's
        // service slot frees up at `start`.
        let start = now.max(self.busy_until[mc]);
        stats.dram_queue.record(start - now);
        let mut service = self.cfg.cycles_per_line;
        if !self.fault_entries.is_empty() {
            let lo = self.fault_start[mc] as usize;
            let hi = self.fault_start[mc + 1] as usize;
            for df in &self.fault_entries[lo..hi] {
                if df.factor > 1 && df.window.contains(start) {
                    service = service.saturating_mul(df.factor);
                }
            }
            if service > self.cfg.cycles_per_line {
                let extra = service - self.cfg.cycles_per_line;
                stats.fault_degraded_cycles += extra;
                stats.trace.record(|| {
                    TraceEvent::instant(
                        start,
                        TraceCategory::Fault,
                        "fault.dram_throttled",
                        Track::Dram(mc as u32),
                        &[("line", dram_line), ("extra", extra)],
                    )
                });
            }
        }
        self.busy_until[mc] = start + service;
        if cap > 0 {
            if n >= cap {
                // Full: drop the oldest (shift left; `cap` is small).
                self.fifo_buf.copy_within(base + 1..base + n, base);
                self.fifo_buf[base + n - 1] = dram_line;
            } else {
                self.fifo_buf[base + n] = dram_line;
                self.fifo_len[mc] = n as u32 + 1;
            }
        }
        let done = start + self.cfg.latency;
        stats.trace.record(|| {
            TraceEvent::span(
                now,
                done - now,
                TraceCategory::Dram,
                "dram.access",
                Track::Dram(mc as u32),
                &[("line", dram_line), ("queued", start - now)],
            )
        });
        done
    }

    /// Accesses every DRAM line backing a cache line (per the translator);
    /// returns the time the last access completes.
    pub fn access_cache_line(
        &mut self,
        translator: &Translator,
        cache_line: u64,
        now: u64,
        stats: &mut Stats,
    ) -> u64 {
        let lines = translator.dram_lines_for(cache_line);
        let mut done = now;
        for &dl in lines.as_slice() {
            done = done.max(self.access_line(dl, now, stats));
        }
        done
    }
}

impl Dram {
    /// Serializes controller occupancy and FIFO-cache contents (see
    /// [`crate::snapshot`]). Geometry and installed throttle faults are
    /// config-derived and not serialized.
    pub(crate) fn snap_write(&self, w: &mut levi_isa::codec::Writer) {
        w.u32(self.busy_until.len() as u32);
        for t in &self.busy_until {
            w.u64(*t);
        }
        let cap = self.cfg.fifo_cache_lines as usize;
        for mc in 0..self.fifo_len.len() {
            let n = self.fifo_len[mc] as usize;
            w.u32(n as u32);
            for line in &self.fifo_buf[mc * cap..mc * cap + n] {
                w.u64(*line);
            }
        }
    }

    /// Restores state written by [`Dram::snap_write`].
    pub(crate) fn snap_read(
        &mut self,
        r: &mut levi_isa::codec::Reader,
    ) -> Result<(), levi_isa::codec::CodecError> {
        let n = r.count(8)?;
        if n != self.busy_until.len() {
            return Err(levi_isa::codec::CodecError::Invalid(
                "dram controller count",
            ));
        }
        for t in &mut self.busy_until {
            *t = r.u64()?;
        }
        let cap = self.cfg.fifo_cache_lines as usize;
        for mc in 0..self.fifo_len.len() {
            let len = r.count(8)?;
            if len > cap {
                return Err(levi_isa::codec::CodecError::Invalid("dram fifo length"));
            }
            self.fifo_len[mc] = len as u32;
            for k in 0..len {
                self.fifo_buf[mc * cap + k] = r.u64()?;
            }
        }
        Ok(())
    }
}

impl Translator {
    /// Serializes registered translation regions (see [`crate::snapshot`]).
    pub(crate) fn snap_write(&self, w: &mut levi_isa::codec::Writer) {
        w.u32(self.entries.len() as u32);
        for e in &self.entries {
            w.u64(e.cache_base);
            w.u64(e.cache_bound);
            w.u64(e.dram_base);
            w.u64(e.padded_size);
            w.u64(e.packed_size);
        }
    }

    /// Restores regions written by [`Translator::snap_write`].
    pub(crate) fn snap_read(
        &mut self,
        r: &mut levi_isa::codec::Reader,
    ) -> Result<(), levi_isa::codec::CodecError> {
        let n = r.count(40)?;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            entries.push(TranslationEntry {
                cache_base: r.u64()?,
                cache_bound: r.u64()?,
                dram_base: r.u64()?,
                padded_size: r.u64()?,
                packed_size: r.u64()?,
            });
        }
        self.entries = entries;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    fn mem_cfg() -> MemConfig {
        MachineConfig::paper_default().mem
    }

    #[test]
    fn translation_packs_objects() {
        // 24B objects padded to 32B in cache, packed to 24B in DRAM.
        let e = TranslationEntry {
            cache_base: 0x1000,
            cache_bound: 0x1000 + 32 * 100,
            dram_base: 0x8000,
            padded_size: 32,
            packed_size: 24,
        };
        assert_eq!(e.translate(0x1000), Some(0x8000));
        assert_eq!(e.translate(0x1017), Some(0x8017)); // last byte of obj 0
        assert_eq!(e.translate(0x1018), None, "padding has no backing");
        assert_eq!(
            e.translate(0x1020),
            Some(0x8018),
            "obj 1 starts right after obj 0"
        );
        assert_eq!(e.translate(0x1040), Some(0x8030), "obj 2");
    }

    #[test]
    fn overlapping_regions_rejected() {
        let mut t = Translator::new();
        t.register(TranslationEntry {
            cache_base: 0,
            cache_bound: 0x100,
            dram_base: 0x1000,
            padded_size: 32,
            packed_size: 24,
        });
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut t2 = t.clone();
            t2.register(TranslationEntry {
                cache_base: 0x80,
                cache_bound: 0x180,
                dram_base: 0x2000,
                padded_size: 32,
                packed_size: 24,
            });
        }));
        assert!(result.is_err());
    }

    #[test]
    fn identity_outside_regions() {
        let t = Translator::new();
        let lines = t.dram_lines_for(0x40);
        assert_eq!(lines.as_slice(), &[0x40]);
    }

    #[test]
    fn consecutive_cache_lines_share_dram_lines() {
        // The paper's Fig. 14 scenario: padded 32B objects (2 per cache
        // line), packed 24B in DRAM. Cache line k holds objects 2k, 2k+1
        // = DRAM bytes [48k, 48k+48) — so cache lines 1 and 2 both touch
        // DRAM line 1.
        let mut t = Translator::new();
        t.register(TranslationEntry {
            cache_base: 0,
            cache_bound: 32 * 1024,
            dram_base: 0,
            padded_size: 32,
            packed_size: 24,
        });
        let l0: Vec<u64> = t.dram_lines_for(0).as_slice().to_vec();
        let l1: Vec<u64> = t.dram_lines_for(1).as_slice().to_vec();
        let l2: Vec<u64> = t.dram_lines_for(2).as_slice().to_vec();
        assert_eq!(l0, vec![0]);
        assert_eq!(l1, vec![0, 1], "cache line 1 straddles DRAM lines 0 and 1");
        assert!(l2.contains(&1));
    }

    #[test]
    fn fifo_cache_absorbs_repeats() {
        let mut d = Dram::new(mem_cfg());
        let mut s = Stats::new();
        let t1 = d.access_line(5, 0, &mut s);
        assert_eq!(s.dram_accesses, 1);
        let t2 = d.access_line(5, t1, &mut s);
        assert_eq!(s.dram_accesses, 1, "second access hits the FIFO cache");
        assert_eq!(s.mc_cache_hits, 1);
        assert_eq!(t2, t1 + mem_cfg().fifo_hit_latency);
    }

    #[test]
    fn fifo_cache_evicts_in_order() {
        let cfg = MemConfig {
            fifo_cache_lines: 2,
            ..mem_cfg()
        };
        let mut d = Dram::new(cfg);
        let mut s = Stats::new();
        // All on controller 0: lines 0, 4, 8 (4 controllers).
        d.access_line(0, 0, &mut s);
        d.access_line(4, 0, &mut s);
        d.access_line(8, 0, &mut s); // evicts line 0
        d.access_line(0, 0, &mut s); // miss again
        assert_eq!(s.dram_accesses, 4);
        assert_eq!(s.mc_cache_hits, 0);
    }

    #[test]
    fn bandwidth_serializes_same_controller() {
        let mut d = Dram::new(mem_cfg());
        let mut s = Stats::new();
        let a = d.access_line(0, 0, &mut s);
        let b = d.access_line(4, 0, &mut s); // same controller (0), different line
        assert_eq!(a, 100);
        assert_eq!(b, 113, "second access waits for the service slot");
        let c = d.access_line(1, 0, &mut s); // controller 1: parallel
        assert_eq!(c, 100);
    }

    #[test]
    fn throttle_multiplies_service_time_in_window() {
        use crate::fault::{CycleWindow, DramFault};
        let mut d = Dram::new(mem_cfg());
        d.install_faults(vec![DramFault {
            controller: 0,
            window: CycleWindow::new(0, 1000),
            factor: 4,
        }]);
        let mut s = Stats::new();
        let a = d.access_line(0, 0, &mut s);
        let b = d.access_line(4, 0, &mut s); // same controller, queued
        assert_eq!(a, 100, "access latency itself is unchanged");
        assert_eq!(b, 152, "service slot now 4 x 13 = 52 cycles");
        assert_eq!(s.fault_degraded_cycles, 2 * 39);
        // Other controllers are unaffected.
        let c = d.access_line(1, 0, &mut s);
        assert_eq!(c, 100);
        // After the window the controller recovers full bandwidth.
        let mut d2 = Dram::new(mem_cfg());
        d2.install_faults(vec![DramFault {
            controller: 0,
            window: CycleWindow::new(0, 10),
            factor: 4,
        }]);
        let mut s2 = Stats::new();
        let x = d2.access_line(0, 500, &mut s2);
        let y = d2.access_line(4, 500, &mut s2);
        assert_eq!(x, 600);
        assert_eq!(y, 613);
        assert_eq!(s2.fault_degraded_cycles, 0);
    }

    #[test]
    fn access_cache_line_counts_all_backing_lines() {
        let mut t = Translator::new();
        t.register(TranslationEntry {
            cache_base: 0,
            cache_bound: 32 * 1024,
            dram_base: 0,
            padded_size: 32,
            packed_size: 24,
        });
        let mut d = Dram::new(mem_cfg());
        let mut s = Stats::new();
        d.access_cache_line(&t, 1, 0, &mut s); // straddles 2 DRAM lines
        assert_eq!(s.dram_accesses, 2);
    }
}
