//! # Leviathan — a unified system for general-purpose near-data computing
//!
//! This crate is a from-scratch reproduction of the system described in
//! *"Leviathan: A Unified System for General-Purpose Near-Data Computing"*
//! (Schwedock & Beckmann, MICRO 2024): a **polymorphic cache hierarchy**
//! that unifies the four near-data-computing paradigms — *task offload*,
//! *long-lived workloads*, *data-triggered actions*, and *streaming* —
//! behind a simple actor-based reactive programming interface.
//!
//! The crate layers the paper's programming model on top of the
//! cycle-approximate multicore model in [`levi_sim`]:
//!
//! * [`System`] — builds and drives a Leviathan machine; registers actions
//!   (the engines' vtable), spawns core threads and long-lived engine
//!   tasks, and runs the simulation.
//! * [`Allocator`] — the object-oriented memory
//!   allocator of Sec. V-A3: pads objects to the next power of two in the
//!   cache, maps multi-line objects to a single LLC bank, and compacts
//!   objects in DRAM via the cache↔DRAM translation of Fig. 14.
//! * [`MorphSpec`] — data-triggered actors: phantom
//!   address ranges whose constructors/destructors run on engines when
//!   lines are inserted into or evicted from the registered cache level.
//! * [`StreamSpec`] — decoupled streams: a long-lived
//!   producer action pushes entries into a circular buffer which the
//!   consumer reads through a phantom range with blocking semantics.
//! * [`future`] — `Future`-style result delivery from near-data actions
//!   back to waiting threads (store-update messages).
//! * [`area`] — the Table IV hardware-overhead model.
//!
//! ## Quickstart: a remote memory operation (paper Fig. 2)
//!
//! ```
//! use leviathan::{System, SystemConfig};
//! use levi_isa::{Location, ProgramBuilder, Reg, RmwOp, MemWidth};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Actor: a u64 counter. Action: add near the data.
//! let mut pb = ProgramBuilder::new();
//! let action_fn = {
//!     let mut f = pb.function("counter_add");
//!     let (actor, amt, old) = (Reg(0), Reg(1), Reg(2));
//!     f.rmw_relaxed(RmwOp::Add, old, actor, amt, MemWidth::B8);
//!     f.halt();
//!     f.finish()
//! };
//! let main_fn = {
//!     let mut f = pb.function("main");
//!     let (actor, amt) = (Reg(0), Reg(1));
//!     f.imm(amt, 5);
//!     f.invoke(actor, levi_isa::ActionId(0), &[amt], Location::Dynamic);
//!     f.halt();
//!     f.finish()
//! };
//! let prog = std::sync::Arc::new(pb.finish()?);
//!
//! let mut sys = System::try_new(SystemConfig::small())?;
//! let counter = sys.alloc_raw(8, 8);
//! let action = sys.register_action(&prog, action_fn);
//! assert_eq!(action, levi_isa::ActionId(0));
//! sys.spawn_thread(0, &prog, main_fn, &[counter]);
//! sys.run()?;
//! assert_eq!(sys.read_u64(counter), 5);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod area;
pub mod future;
pub mod morph;
pub mod stream;
pub mod system;

pub use alloc::{Allocator, ArraySpec, ObjectArray};
pub use area::{AreaModel, AreaReport};
pub use morph::{MorphHandle, MorphSpec};
pub use stream::{StreamHandle, StreamSpec};
pub use system::{System, SystemConfig};
