//! Thin wrapper: `cargo bench --bench fig22_invoke_buffer` dispatches to the `fig22_invoke_buffer`
//! descriptor in the unified figure registry (`levi_bench::figures`),
//! which `levi-bench run fig22_invoke_buffer` executes identically.

fn main() {
    levi_bench::runner::bench_main("fig22_invoke_buffer");
}
