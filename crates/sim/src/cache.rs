//! Set-associative cache banks.
//!
//! One [`CacheBank`] models one cache: a private L1 or L2, one shared LLC
//! bank, or an engine L1d. Banks are *tag-only* — functional data lives in
//! the flat [`levi_isa::PagedMem`] — so a bank tracks presence, dirtiness,
//! replacement state, coherence metadata (for the LLC's in-tag directory),
//! and Leviathan's per-line destructor-trigger bit (paper Sec. VI-B2).

use crate::config::{CacheConfig, Replacement, LINE_SHIFT};

/// Coherence state of a line in a *private* cache (MESI reduced to the two
/// states that matter for our timing: exclusive-ownership vs shared).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrivState {
    /// Shared, read-only.
    Shared,
    /// Modified/exclusive: this tile owns the line.
    Owned,
}

/// Metadata for one resident cache line.
#[derive(Clone, Debug)]
pub struct Line {
    /// Line address (byte address >> 6).
    pub line: u64,
    /// Dirty (must be written back on eviction).
    pub dirty: bool,
    /// Leviathan tag bit: run the Morph destructor when this line is
    /// evicted.
    pub dtor: bool,
    /// Coherence state (meaningful in private caches).
    pub state: PrivState,
    /// Directory: bitmask of tiles with a private copy (LLC banks only).
    pub sharers: u64,
    /// Directory: tile that owns the line exclusively (LLC banks only).
    pub owner: Option<u8>,
    /// SRRIP re-reference counter (0 = near, 3 = distant).
    rrip: u8,
    /// LRU timestamp.
    lru: u64,
}

impl Line {
    fn new(line: u64) -> Self {
        Line {
            line,
            dirty: false,
            dtor: false,
            state: PrivState::Shared,
            sharers: 0,
            owner: None,
            rrip: 2,
            lru: 0,
        }
    }
}

/// One set-associative, tag-only cache bank.
#[derive(Clone, Debug)]
pub struct CacheBank {
    sets: Vec<Vec<Line>>,
    ways: usize,
    set_mask: u64,
    replacement: Replacement,
    tick: u64,
}

impl CacheBank {
    /// Builds a bank from a [`CacheConfig`].
    ///
    /// # Panics
    /// Panics if the implied set count is not a power of two.
    pub fn new(cfg: &CacheConfig) -> Self {
        let sets = cfg.sets();
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        CacheBank {
            sets: vec![Vec::with_capacity(cfg.ways as usize); sets as usize],
            ways: cfg.ways as usize,
            set_mask: sets - 1,
            replacement: cfg.replacement,
            tick: 0,
        }
    }

    #[inline]
    fn set_of(&self, line: u64) -> usize {
        (line & self.set_mask) as usize
    }

    /// Converts a byte address to its line address.
    #[inline]
    pub fn line_of(addr: u64) -> u64 {
        addr >> LINE_SHIFT
    }

    /// Looks up `line`; on a hit, updates replacement state and returns the
    /// line's metadata.
    pub fn probe(&mut self, line: u64) -> Option<&mut Line> {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(line);
        let l = self.sets[set].iter_mut().find(|l| l.line == line)?;
        l.lru = tick;
        l.rrip = 0;
        Some(l)
    }

    /// Looks up `line` without touching replacement state.
    pub fn peek(&self, line: u64) -> Option<&Line> {
        let set = self.set_of(line);
        self.sets[set].iter().find(|l| l.line == line)
    }

    /// Mutable peek without touching replacement state.
    pub fn peek_mut(&mut self, line: u64) -> Option<&mut Line> {
        let set = self.set_of(line);
        self.sets[set].iter_mut().find(|l| l.line == line)
    }

    /// True if `line` is resident.
    pub fn contains(&self, line: u64) -> bool {
        self.peek(line).is_some()
    }

    /// Inserts `line`, evicting a victim if the set is full. Returns the
    /// victim's metadata, if any. The caller configures the inserted line
    /// through the returned reference.
    ///
    /// `pinned` lists lines that must not be chosen as victims — the
    /// in-flight fills of the surrounding walk (the MSHR/line-buffer
    /// protection real hardware provides).
    ///
    /// # Panics
    /// Panics if the line is already resident (callers must probe first),
    /// or if every way of the set is pinned.
    pub fn insert(&mut self, line: u64, pinned: &[u64]) -> (&mut Line, Option<Line>) {
        self.tick += 1;
        let tick = self.tick;
        let set_idx = self.set_of(line);
        debug_assert!(
            !self.sets[set_idx].iter().any(|l| l.line == line),
            "inserting already-resident line {line:#x}"
        );
        let victim = if self.sets[set_idx].len() >= self.ways {
            let vi = self.pick_victim(set_idx, pinned);
            Some(self.sets[set_idx].swap_remove(vi))
        } else {
            None
        };
        let mut newline = Line::new(line);
        newline.lru = tick;
        newline.rrip = 2;
        let set = &mut self.sets[set_idx];
        set.push(newline);
        let lref = set.last_mut().expect("just pushed");
        (lref, victim)
    }

    fn pick_victim(&mut self, set_idx: usize, pinned: &[u64]) -> usize {
        match self.replacement {
            Replacement::Lru => {
                let set = &self.sets[set_idx];
                let mut vi = None;
                for (i, l) in set.iter().enumerate() {
                    if pinned.contains(&l.line) {
                        continue;
                    }
                    match vi {
                        None => vi = Some(i),
                        Some(j) if l.lru < set[j].lru => vi = Some(i),
                        _ => {}
                    }
                }
                vi.expect("every way of the set is pinned")
            }
            Replacement::Srrip => {
                // Find a distant (rrip==3) unpinned line, aging the set
                // until one exists. Bounded: each pass increments every
                // counter; pinned lines must not fill the whole set.
                assert!(
                    self.sets[set_idx].iter().any(|l| !pinned.contains(&l.line)),
                    "every way of the set is pinned"
                );
                loop {
                    let set = &mut self.sets[set_idx];
                    if let Some(i) = set
                        .iter()
                        .position(|l| l.rrip >= 3 && !pinned.contains(&l.line))
                    {
                        return i;
                    }
                    for l in set.iter_mut() {
                        l.rrip += 1;
                    }
                }
            }
        }
    }

    /// Removes `line` if resident, returning its metadata.
    pub fn invalidate(&mut self, line: u64) -> Option<Line> {
        let set = self.set_of(line);
        let pos = self.sets[set].iter().position(|l| l.line == line)?;
        Some(self.sets[set].swap_remove(pos))
    }

    /// Removes and returns every resident line whose *byte* range overlaps
    /// `[base, bound)`. Used by `flush`.
    pub fn drain_range(&mut self, base: u64, bound: u64) -> Vec<Line> {
        crate::perf::prof_scope!(crate::perf::Phase::Flush);
        let first = base >> LINE_SHIFT;
        let last = (bound + (1 << LINE_SHIFT) - 1) >> LINE_SHIFT;
        let mut out = Vec::new();
        for set in &mut self.sets {
            let mut i = 0;
            while i < set.len() {
                if set[i].line >= first && set[i].line < last {
                    out.push(set.swap_remove(i));
                } else {
                    i += 1;
                }
            }
        }
        out.sort_by_key(|l| l.line);
        out
    }

    /// Number of resident lines.
    pub fn resident(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }

    /// Iterates over all resident lines (diagnostics).
    pub fn iter(&self) -> impl Iterator<Item = &Line> {
        self.sets.iter().flatten()
    }
}

impl CacheBank {
    /// Serializes bank contents (see [`crate::snapshot`]). Geometry
    /// (set count, ways, replacement policy) comes from the config at
    /// restore time and is validated, not serialized.
    pub(crate) fn snap_write(&self, w: &mut levi_isa::codec::Writer) {
        w.u64(self.tick);
        w.u32(self.sets.len() as u32);
        for set in &self.sets {
            w.u32(set.len() as u32);
            for l in set {
                w.u64(l.line);
                w.bool(l.dirty);
                w.bool(l.dtor);
                w.u8(match l.state {
                    PrivState::Shared => 0,
                    PrivState::Owned => 1,
                });
                w.u64(l.sharers);
                match l.owner {
                    Some(o) => {
                        w.bool(true);
                        w.u8(o);
                    }
                    None => w.bool(false),
                }
                w.u8(l.rrip);
                w.u64(l.lru);
            }
        }
    }

    /// Restores bank contents written by [`CacheBank::snap_write`] into a
    /// bank with matching geometry.
    pub(crate) fn snap_read(
        &mut self,
        r: &mut levi_isa::codec::Reader,
    ) -> Result<(), levi_isa::codec::CodecError> {
        use levi_isa::codec::CodecError;
        self.tick = r.u64()?;
        let nsets = r.u32()? as usize;
        if nsets != self.sets.len() {
            return Err(CodecError::Invalid("cache set count"));
        }
        for set in &mut self.sets {
            set.clear();
            let n = r.count(12)?;
            if n > self.ways {
                return Err(CodecError::Invalid("cache set occupancy"));
            }
            for _ in 0..n {
                let line = r.u64()?;
                let dirty = r.bool()?;
                let dtor = r.bool()?;
                let state = match r.u8()? {
                    0 => PrivState::Shared,
                    1 => PrivState::Owned,
                    _ => return Err(CodecError::Invalid("coherence state")),
                };
                let sharers = r.u64()?;
                let owner = if r.bool()? { Some(r.u8()?) } else { None };
                let rrip = r.u8()?;
                let lru = r.u64()?;
                set.push(Line {
                    line,
                    dirty,
                    dtor,
                    state,
                    sharers,
                    owner,
                    rrip,
                    lru,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(ways: u32, repl: Replacement) -> CacheBank {
        // 4 sets x `ways` ways of 64B lines.
        CacheBank::new(&CacheConfig {
            size_bytes: 4 * ways as u64 * 64,
            ways,
            latency: 1,
            replacement: repl,
        })
    }

    #[test]
    fn hit_after_insert() {
        let mut c = tiny(2, Replacement::Lru);
        let (l, v) = c.insert(0x40, &[]);
        assert!(v.is_none());
        l.dirty = true;
        assert!(c.contains(0x40));
        assert!(c.probe(0x40).unwrap().dirty);
        assert!(!c.contains(0x41));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny(2, Replacement::Lru);
        // Lines 0x0, 0x4, 0x8 all map to set 0 (4 sets).
        c.insert(0x0, &[]);
        c.insert(0x4, &[]);
        c.probe(0x0); // refresh 0x0 so 0x4 is LRU
        let (_, victim) = c.insert(0x8, &[]);
        assert_eq!(victim.unwrap().line, 0x4);
        assert!(c.contains(0x0));
        assert!(c.contains(0x8));
    }

    #[test]
    fn srrip_prefers_unreused_lines() {
        let mut c = tiny(2, Replacement::Srrip);
        c.insert(0x0, &[]);
        c.insert(0x4, &[]);
        c.probe(0x0); // promote to near
        let (_, victim) = c.insert(0x8, &[]);
        assert_eq!(victim.unwrap().line, 0x4, "unreused line evicted first");
    }

    #[test]
    fn invalidate_removes() {
        let mut c = tiny(2, Replacement::Lru);
        c.insert(0x40, &[]);
        let gone = c.invalidate(0x40);
        assert_eq!(gone.unwrap().line, 0x40);
        assert!(!c.contains(0x40));
        assert!(c.invalidate(0x40).is_none());
    }

    #[test]
    fn drain_range_collects_overlapping_lines() {
        let mut c = tiny(4, Replacement::Lru);
        // Byte addresses: lines 1,2,3 cover [0x40, 0x100).
        c.insert(1, &[]);
        c.insert(2, &[]);
        c.insert(3, &[]);
        c.insert(9, &[]);
        let drained = c.drain_range(0x40, 0xC1); // bytes 0x40..0xC1 -> lines 1..=3
        let lines: Vec<u64> = drained.iter().map(|l| l.line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
        assert!(c.contains(9));
        assert_eq!(c.resident(), 1);
    }

    #[test]
    fn sets_are_isolated() {
        let mut c = tiny(1, Replacement::Lru);
        // 4 sets, 1 way: lines 0..4 each land in their own set.
        for line in 0..4 {
            let (_, v) = c.insert(line, &[]);
            assert!(v.is_none(), "no conflict across sets");
        }
        assert_eq!(c.resident(), 4);
        // A fifth line aliasing set 0 evicts line 0.
        let (_, v) = c.insert(4, &[]);
        assert_eq!(v.unwrap().line, 0);
    }

    #[test]
    fn directory_fields_default_empty() {
        let mut c = tiny(1, Replacement::Lru);
        let (l, _) = c.insert(7, &[]);
        assert_eq!(l.sharers, 0);
        assert_eq!(l.owner, None);
        assert!(!l.dtor);
        l.sharers |= 1 << 3;
        l.owner = Some(3);
        assert_eq!(c.peek(7).unwrap().owner, Some(3));
    }
}
