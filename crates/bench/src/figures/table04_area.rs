//! Table IV — hardware overhead (state per LLC bank).
//!
//! Paper: 32.8 KB per bank = 6.4% of a 512 KB LLC bank.

use levi_sim::MachineConfig;
use leviathan::AreaModel;

use crate::runner::{Figure, RunCtx};
use crate::{header, pct, table_report};

/// The figure descriptor.
pub const FIG: Figure = Figure {
    id: "table04_area",
    about: "hardware overhead: state per LLC bank (paper Table IV)",
    workloads: &[],
    run,
};

fn run(_ctx: &RunCtx) {
    header(
        "Table IV — hardware overhead (state per LLC bank)",
        "paper: 32.8 KB / 512 KB = 6.4%",
    );
    let cfg = MachineConfig::paper_default();
    let report = AreaModel::default().report(&cfg);
    let mut rows: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                r.component.clone(),
                r.formula.clone(),
                format!("{:.1} KB", r.bytes / 1024.0),
            ]
        })
        .collect();
    rows.push(vec![
        "Total per LLC bank".into(),
        format!(
            "{:.1} KB / {:.0} KB",
            report.total_bytes / 1024.0,
            report.llc_bank_bytes / 1024.0
        ),
        pct(report.overhead_fraction()),
    ]);
    table_report("table04_area", &["component", "sizing", "bytes"], &rows);

    assert!((report.total_bytes / 1024.0 - 32.8).abs() < 0.1);
    assert!((report.overhead_fraction() - 0.064).abs() < 0.001);
    crate::outln!();
    crate::outln!("measured matches the paper's Table IV exactly (same formulas).");
}
