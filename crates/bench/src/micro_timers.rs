//! Wall-clock timing kernels for the `micro_substrate` figure: cache-bank
//! operations, NoC sends, LevIR interpretation, allocator planning, and a
//! small end-to-end simulation.
//!
//! The timing core (warmup + median-of-batches, histograms in the
//! simulator's own log2 buckets) lives in `levi-perf` so this figure and
//! the `levi-bench perf` regression gate cannot drift apart; [`median_ns`]
//! is re-exported from there. Numbers are indicative, not statistically
//! rigorous — and unlike every simulated figure they are *not*
//! deterministic: wall-clock nanoseconds vary run to run, and a parallel
//! sweep adds scheduling noise. Run with `--serial` / `LEVI_SWEEP_SERIAL`
//! for the quietest numbers.

use levi_isa::{interp::Interpreter, Memory, PagedMem, ProgramBuilder, Reg};
use levi_sim::cache::CacheBank;
use levi_sim::noc::Noc;
use levi_sim::{Machine, MachineConfig, Stats};
use leviathan::alloc::{Allocator, ArraySpec};
use std::hint::black_box;
use std::sync::Arc;

pub use levi_perf::median_ns;

/// A self-contained timing kernel returning its median ns/iter.
pub type TimerFn = fn() -> f64;

/// The substrate timing kernels as `(name, timer)` pairs, in presentation
/// order. Each timer is self-contained and returns its median ns/iter, so
/// the figure can fan them out through a [`crate::Sweep`].
pub static KERNELS: &[(&str, TimerFn)] = &[
    ("cache/probe_hit", probe_hit),
    ("cache/insert_evict", insert_evict),
    ("noc/send_corner_to_corner", noc_send),
    ("isa/interp_sum64", interp_sum64),
    ("alloc/plan_array", plan_array),
    ("machine/scan_256_lines", scan_256_lines),
];

fn probe_hit() -> f64 {
    let cfg = MachineConfig::paper_default();
    let mut bank = CacheBank::new(&cfg.llc);
    bank.insert(0x1234, &[]);
    median_ns(1_000_000, || {
        black_box(bank.probe(black_box(0x1234)).is_some());
    })
}

fn insert_evict() -> f64 {
    let cfg = MachineConfig::paper_default();
    let mut bank = CacheBank::new(&cfg.l1);
    let mut line = 0u64;
    median_ns(1_000_000, || {
        line += 1;
        black_box(bank.insert(black_box(line), &[]).1.is_some());
    })
}

fn noc_send() -> f64 {
    let cfg = MachineConfig::paper_default();
    let (cols, rows) = cfg.mesh_dims();
    let mut noc = Noc::new(cols, rows, cfg.noc);
    let mut stats = Stats::new();
    let mut t = 0u64;
    median_ns(1_000_000, || {
        t += 10;
        black_box(noc.send(0, 15, 72, t, &mut stats));
    })
}

fn interp_sum64() -> f64 {
    // Sum a 64-element array (functional interpreter throughput).
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("sum");
    let (base, n, acc, i, v) = (Reg(0), Reg(1), Reg(2), Reg(3), Reg(4));
    let top = f.label();
    let out = f.label();
    f.imm(acc, 0).imm(i, 0);
    f.bind(top);
    f.bge_u(i, n, out);
    f.ld8(v, base, 0);
    f.add(acc, acc, v);
    f.addi(base, base, 8);
    f.addi(i, i, 1);
    f.jmp(top);
    f.bind(out);
    f.mov(Reg(0), acc).ret();
    let sum = f.finish();
    let prog = pb.finish().unwrap();
    let mut mem = PagedMem::new();
    for k in 0..64u64 {
        mem.write_u64(0x1000 + 8 * k, k);
    }
    median_ns(20_000, || {
        let mut interp = Interpreter::new(&prog);
        black_box(interp.run(sum, &[0x1000, 64], &mut mem).unwrap());
    })
}

fn plan_array() -> f64 {
    median_ns(200_000, || {
        let mut a = Allocator::new();
        black_box(a.plan_array(&ArraySpec::new("n", black_box(24), 1024)));
    })
}

fn scan_256_lines() -> f64 {
    // End-to-end: one thread scanning 256 lines through the hierarchy.
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("scan");
    let (p, i, n, v) = (Reg(1), Reg(2), Reg(3), Reg(4));
    f.imm(p, 0x10000).imm(i, 0).imm(n, 256);
    let top = f.label();
    let out = f.label();
    f.bind(top);
    f.bge_u(i, n, out);
    f.ld8(v, p, 0);
    f.addi(p, p, 64);
    f.addi(i, i, 1);
    f.jmp(top);
    f.bind(out);
    f.halt();
    let func = f.finish();
    let prog = Arc::new(pb.finish().unwrap());
    median_ns(500, || {
        let mut cfg = MachineConfig::with_tiles(4);
        cfg.prefetcher = false;
        let mut m = Machine::try_new(cfg).unwrap();
        m.spawn_thread(0, prog.clone(), func, &[]).unwrap();
        black_box(m.run().unwrap().cycles);
    })
}
