//! Decoupled graph traversal via streaming (the paper's Fig. 19/20 case
//! study, HATS).
//!
//! A long-lived `genStream` action on the engine runs a bounded DFS over a
//! community-structured graph and pushes edges into a stream; the core
//! consumes them with a plain sequential loop. Traversal order recovers
//! community locality, and the consumer's control flow becomes perfectly
//! predictable.
//!
//! Run with: `cargo run --release --example graph_stream`

use levi_workloads::gen::Graph;
use levi_workloads::hats::{run_hats_on, HatsScale, HatsVariant};

fn main() {
    let mut scale = HatsScale::test();
    scale.vertices = 4096;
    let graph = Graph::community(
        scale.vertices,
        scale.avg_degree,
        scale.community,
        scale.intra_pct,
        scale.seed,
    );
    println!(
        "graph: {} vertices / {} edges, communities of {} ({}% intra)",
        graph.num_vertices,
        graph.num_edges(),
        scale.community,
        graph.intra_community_fraction(scale.community) * 100.0
    );
    println!();

    let base = run_hats_on(HatsVariant::Baseline, &scale, &graph);
    let sw = run_hats_on(HatsVariant::SoftwareBdfs, &scale, &graph);
    let lev = run_hats_on(HatsVariant::Leviathan, &scale, &graph);
    assert_eq!(base.rank_checksum, lev.rank_checksum);
    assert_eq!(base.rank_checksum, sw.rank_checksum);

    let report = |r: &levi_workloads::hats::HatsResult| {
        format!(
            "{:>9} cycles | {:.3} mispredicts/edge | {:>7} DRAM",
            r.metrics.cycles,
            r.metrics.stats.mispredicts as f64 / r.edges as f64,
            r.metrics.stats.dram_accesses
        )
    };
    println!("layout order (core): {}", report(&base));
    println!("BDFS on the core:    {}", report(&sw));
    println!("Leviathan stream:    {}", report(&lev));
    println!();
    println!(
        "speedup: {:.2}x — the stream regularizes the consumer's control flow",
        lev.metrics.speedup_vs(&base.metrics)
    );
    println!("and lets the producer run ahead of demand.");
}
