//! # levi-workloads — the Leviathan case-study applications
//!
//! The four evaluation workloads of the paper, each with its software
//! baseline and prior-work comparison points, written in LevIR against the
//! `leviathan` programming interface:
//!
//! * [`phi`] — commutative scatter-updates / push PageRank (Fig. 5).
//! * [`decompress`] — near-cache data transformation (Fig. 16).
//! * [`hashtable`] — offloaded hash-table lookups (Figs. 18, 24, 25).
//! * [`hats`] — decoupled BDFS graph traversal via streaming
//!   (Figs. 20, 21, 23).
//! * [`micro`] — substrate microkernels (scan, pointer chase, invoke).
//!
//! Every workload implements the [`harness::Workload`] trait and is
//! listed in [`harness::REGISTRY`]; drivers enumerate the registry
//! instead of naming workloads. Supporting modules: [`gen`] (seeded graph
//! and key-distribution generators) and [`metrics`] (measurement capture
//! and comparison).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decompress;
pub mod gen;
pub mod harness;
pub mod hashtable;
pub mod hats;
pub mod metrics;
pub mod micro;
pub mod phi;
pub mod rng;

pub use gen::{Graph, Uniform, Zipf};
pub use harness::{
    DynWorkload, FaultSpec, PreparedRun, RunEnv, RunOutcome, RunStatus, ScaleKind, Workload,
    REGISTRY,
};
pub use metrics::RunMetrics;
pub use rng::SmallRng;
