//! Steady-state allocation smoke test.
//!
//! The data-oriented substrate claims the simulator's per-instruction hot
//! path — `run_actor`, cache probes/fills, waiter park/wake, DRAM and NoC
//! queueing — performs **zero heap allocations** once warm: flat slabs are
//! sized up front, scratch vectors are taken/restored, waiter lists are
//! pooled, and guest memory pages are only allocated on first touch.
//!
//! Verified with a counting global allocator and two otherwise-identical
//! single-thread runs that differ only in loop trip count: the longer run
//! executes ~60k more instructions over the *same* memory footprint, so
//! any per-instruction allocation would show up as a large count delta.
//! A small slack absorbs one-off amortized growth (e.g. a `Vec` capacity
//! doubling inside stats sampling).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use levi_isa::{Memory, Reg};
use levi_sim::{Machine, MachineConfig};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Builds the benchmark kernel: `reps` passes summing a 64-entry array.
/// The footprint (8 lines of data + code) is constant; only the
/// instruction count scales with `reps`.
fn kernel() -> (Arc<levi_isa::Program>, levi_isa::FuncId) {
    let mut pb = levi_isa::ProgramBuilder::new();
    let mut f = pb.function("sweep");
    let (base, reps, acc, r, i, p, v) = (Reg(0), Reg(1), Reg(2), Reg(3), Reg(4), Reg(5), Reg(6));
    let outer = f.label();
    let inner = f.label();
    let inner_out = f.label();
    let done = f.label();
    f.imm(acc, 0).imm(r, 0);
    f.bind(outer);
    f.bge_u(r, reps, done);
    f.mov(p, base).imm(i, 0);
    f.bind(inner);
    f.imm(v, 64);
    f.bge_u(i, v, inner_out);
    f.ld8(v, p, 0);
    f.add(acc, acc, v);
    f.addi(p, p, 8);
    f.addi(i, i, 1);
    f.jmp(inner);
    f.bind(inner_out);
    f.addi(r, r, 1);
    f.jmp(outer);
    f.bind(done);
    f.mov(Reg(0), acc).halt();
    let func = f.finish();
    (Arc::new(pb.finish().unwrap()), func)
}

/// Runs the kernel with `reps` passes; returns (alloc calls during run,
/// instructions executed, checksum).
fn measure(reps: u64) -> (u64, u64, u64) {
    let (prog, func) = kernel();
    let mut cfg = MachineConfig::with_tiles(4);
    cfg.prefetcher = false;
    let mut m = Machine::try_new(cfg).unwrap();
    let base = 0x10_0000u64;
    for k in 0..64u64 {
        m.mem_mut().write_u64(base + 8 * k, k + 1);
    }
    m.spawn_thread(0, prog, func, &[base, reps]).unwrap();
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    m.run().unwrap();
    let after = ALLOC_CALLS.load(Ordering::Relaxed);
    (
        after - before,
        m.stats().core_instrs,
        m.mem().read_u64(base),
    )
}

#[test]
fn steady_state_run_allocates_nothing_per_instruction() {
    // One test fn (not two) so no parallel test thread pollutes the
    // global counter between the two measurements.
    let (allocs_short, instrs_short, sum_a) = measure(10);
    let (allocs_long, instrs_long, sum_b) = measure(200);
    assert_eq!(sum_a, sum_b, "both runs compute the same checksum");
    let extra_instrs = instrs_long - instrs_short;
    assert!(
        extra_instrs > 50_000,
        "the long run must add real steady-state work: {extra_instrs}"
    );
    // Both runs pay the same cold-start allocations (first-touch pages,
    // map growth to peak occupancy, scratch capacity). The steady-state
    // tail must add essentially none; 64 covers amortized container
    // doubling without masking a per-instruction or per-miss allocation
    // (which would cost thousands here).
    let extra_allocs = allocs_long.saturating_sub(allocs_short);
    assert!(
        extra_allocs < 64,
        "steady-state execution must not allocate: {extra_allocs} extra \
         allocation calls over {extra_instrs} extra instructions"
    );
}
