//! The hardware core of the simulator: the cache-hierarchy *walk*.
//!
//! Every memory access — from a core or an engine — is resolved by walking
//! the hierarchy synchronously, reserving contended resources (cache banks,
//! NoC links, DRAM controllers) at future times and updating cache and
//! directory state along the way. The walk is where Leviathan's
//! polymorphism lives: misses in Morph-registered phantom ranges trigger
//! constructor actions on the nearby engine instead of fetching from the
//! next level, and evictions of destructor-tagged lines trigger destructor
//! actions (paper Secs. V-B2, VI-B2).

use levi_isa::{exec, Addr, ExecCtx, InstClass, MemEffect, NoNdc, Program};

use crate::cache::{CacheBank, PrivState};
use crate::config::{MachineConfig, LINE_SHIFT, LINE_SIZE};
use crate::dram::{Dram, Translator};
use crate::engine::{EngineId, EngineLevel, EngineState};
use crate::error::SimError;
use crate::fault::FaultState;
use crate::ndc::{MorphLevel, NdcState, WaitCond};
use crate::noc::Noc;
use crate::stats::Stats;
use crate::trace::{TraceCategory, TraceEvent, Tracer, Track};

/// Control message payload bytes (request headers, invalidations, acks).
pub const CTRL_MSG: u32 = 16;
/// Data message payload bytes (a line plus header).
pub const DATA_MSG: u32 = 72;
/// Invalidation message bytes.
pub const INVAL_MSG: u32 = 8;

/// What an access wants from the memory system.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// Read (shared permission suffices).
    Read,
    /// Write (requires ownership; write-allocate).
    Write,
    /// Atomic read-modify-write (requires ownership).
    Rmw,
}

impl AccessKind {
    /// True if the access needs exclusive ownership.
    pub fn wants_ownership(self) -> bool {
        !matches!(self, AccessKind::Read)
    }
}

/// Result of a walk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Walk {
    /// The access completes at this cycle.
    Done {
        /// Completion cycle.
        at: u64,
    },
    /// The access cannot proceed; the context must park on the condition.
    Blocked(WaitCond),
}

/// Per-tile stride prefetcher state (L2, degree-N).
#[derive(Clone, Copy, Debug, Default)]
pub struct StridePf {
    last_line: u64,
    stride: i64,
    confidence: u8,
}

impl StridePf {
    /// Observes a miss line; returns a confirmed stride if confident.
    fn observe(&mut self, line: u64) -> Option<i64> {
        let stride = line as i64 - self.last_line as i64;
        if stride != 0 && stride == self.stride {
            self.confidence = (self.confidence + 1).min(3);
        } else {
            self.stride = stride;
            self.confidence = 0;
        }
        self.last_line = line;
        if self.confidence >= 2 && self.stride.abs() <= 8 {
            Some(self.stride)
        } else {
            None
        }
    }
}

/// All hardware state below the execution contexts.
#[derive(Debug)]
pub struct Hw {
    /// Machine configuration.
    pub cfg: MachineConfig,
    /// Per-tile L1 data caches.
    pub l1: Vec<CacheBank>,
    /// Per-tile private L2 caches.
    pub l2: Vec<CacheBank>,
    /// Per-tile LLC banks (shared, inclusive, with in-tag directory).
    pub llc: Vec<CacheBank>,
    /// Engines, two per tile (see [`EngineId::index`]).
    pub engines: Vec<EngineState>,
    /// The mesh NoC.
    pub noc: Noc,
    /// DRAM subsystem.
    pub dram: Dram,
    /// Cache↔DRAM compaction translator.
    pub translator: Translator,
    /// NDC architectural state.
    pub ndc: NdcState,
    /// Statistics.
    pub stats: Stats,
    /// Injected-fault state (engine refusal windows, invoke squeezes, and
    /// the retry/backoff policy). Empty unless the config carried a
    /// [`crate::fault::FaultPlan`].
    pub faults: FaultState,
    /// A fatal simulation error raised mid-actor (e.g. an invoke of an
    /// unregistered action); `Machine::run` drains it into
    /// `RunError::Fault`.
    pub(crate) fatal: Option<SimError>,
    /// Per-tile prefetchers.
    prefetchers: Vec<StridePf>,
    /// Lines with in-flight fills (MSHR/line-buffer protection): never
    /// chosen as victims while a walk that fills them is in progress.
    pins: Vec<u64>,
    /// Nesting depth of inline (data-triggered) action execution.
    inline_depth: u32,
    /// Destructor work deferred from within inline actions (the engine's
    /// actor buffer): drained iteratively once the current action ends,
    /// preventing unbounded eviction cascades.
    pending_dtors: Vec<PendingDtor>,
}

/// A deferred destructor invocation (see [`Hw::pending_dtors`]).
#[derive(Clone, Copy, Debug)]
struct PendingDtor {
    eid: EngineId,
    line: u64,
    dirty: bool,
    at: u64,
    level: MorphLevel,
    home: u32,
}

impl Hw {
    /// Builds the hardware from a configuration.
    pub fn new(cfg: MachineConfig) -> Self {
        let tiles = cfg.tiles as usize;
        let (cols, rows) = cfg.mesh_dims();
        let mut engines = Vec::with_capacity(tiles * 2);
        for t in 0..cfg.tiles {
            engines.push(EngineState::new(
                EngineId {
                    tile: t,
                    level: EngineLevel::L2,
                },
                &cfg.engine,
            ));
            engines.push(EngineState::new(
                EngineId {
                    tile: t,
                    level: EngineLevel::Llc,
                },
                &cfg.engine,
            ));
        }
        let mut stats = Stats::new();
        stats.trace = Tracer::new(cfg.trace, cfg.trace_capacity);
        stats.timeline = crate::stats::TimeSeries::new(cfg.sample_interval);
        let mut noc = Noc::new(cols, rows, cfg.noc);
        let mut dram = Dram::new(cfg.mem);
        let mut faults = FaultState::default();
        if let Some(plan) = &cfg.fault_plan {
            noc.install_faults(plan.link_faults.clone());
            dram.install_faults(plan.dram_faults.clone());
            stats.faults_injected = plan.total_faults();
            faults = FaultState::from_plan(plan);
        }
        Hw {
            l1: (0..tiles).map(|_| CacheBank::new(&cfg.l1)).collect(),
            l2: (0..tiles).map(|_| CacheBank::new(&cfg.l2)).collect(),
            llc: (0..tiles).map(|_| CacheBank::new(&cfg.llc)).collect(),
            engines,
            noc,
            dram,
            translator: Translator::new(),
            ndc: NdcState::default(),
            stats,
            faults,
            fatal: None,
            prefetchers: vec![StridePf::default(); tiles],
            pins: Vec::new(),
            inline_depth: 0,
            pending_dtors: Vec::new(),
            cfg,
        }
    }

    /// Takes a time-series sample if one is due at cycle `now`, reading
    /// instantaneous engine-context occupancy and stream buffer depth.
    pub fn maybe_sample(&mut self, now: u64) {
        if !self.stats.timeline.due(now) {
            return;
        }
        let ctxs: u32 = self.engines.iter().map(|e| e.ctxs_in_use()).sum();
        let depth = self.ndc.buffered_entries();
        self.stats.take_sample(now, ctxs, depth);
    }

    /// Pins `line` against eviction for the duration of a walk.
    fn pin(&mut self, line: u64) {
        self.pins.push(line);
    }

    /// Releases the most recent pin.
    fn unpin(&mut self) {
        self.pins.pop().expect("unbalanced unpin");
    }

    /// The LLC bank holding `addr`, honoring Leviathan's bank-mapping
    /// overrides for large objects.
    pub fn bank_of(&self, addr: Addr) -> u32 {
        let line = addr >> LINE_SHIFT;
        let ignore = self.ndc.bank_ignore_bits(addr);
        ((line >> ignore) % self.cfg.tiles as u64) as u32
    }

    // ------------------------------------------------------------------
    // Core-side walk
    // ------------------------------------------------------------------

    /// Resolves a core access. `allow_phantom` is false only when called
    /// from within an inline (data-triggered) action, which must not nest.
    pub fn access_core(
        &mut self,
        mem: &mut dyn levi_isa::Memory,
        tile: u32,
        kind: AccessKind,
        addr: Addr,
        now: u64,
        allow_phantom: bool,
    ) -> Walk {
        self.pin(addr >> LINE_SHIFT);
        let w = self.access_core_inner(mem, tile, kind, addr, now, allow_phantom);
        self.unpin();
        w
    }

    fn access_core_inner(
        &mut self,
        mem: &mut dyn levi_isa::Memory,
        tile: u32,
        kind: AccessKind,
        addr: Addr,
        now: u64,
        allow_phantom: bool,
    ) -> Walk {
        let line = addr >> LINE_SHIFT;
        let t = tile as usize;

        // Stream stall check (Sec. VI-B3): loads to a stream's phantom
        // range stall while the entry at the head has not been pushed —
        // on every access, cached or not (the engine's tail register
        // gates the load, not the cache).
        if allow_phantom && !self.ndc.morphs.is_empty() {
            if let Some(mi) = self.ndc.morph_at(addr) {
                if let Some(sid) = self.ndc.morphs[mi].stream {
                    let st = self.ndc.stream(sid);
                    if st.is_empty() && !st.closed {
                        return Walk::Blocked(WaitCond::StreamData(sid));
                    }
                }
            }
        }

        // L1 probe.
        if let Some(l) = self.l1[t].probe(line) {
            if !kind.wants_ownership() || l.state == PrivState::Owned {
                if kind.wants_ownership() {
                    l.dirty = true;
                }
                self.stats.l1.hits += 1;
                return Walk::Done {
                    at: now + self.cfg.l1.latency,
                };
            }
            // Present but shared and we need ownership: upgrade miss.
        }
        self.stats.l1.misses += 1;
        let mut now = now + self.cfg.l1.latency;

        // L2 probe.
        if let Some(l) = self.l2[t].probe(line) {
            if !kind.wants_ownership() || l.state == PrivState::Owned {
                self.stats.l2.hits += 1;
                if kind.wants_ownership() {
                    l.dirty = true;
                }
                let state = l.state;
                now += self.cfg.l2.latency;
                self.fill_l1(mem, tile, line, state, kind, now);
                return Walk::Done { at: now };
            }
        }
        self.stats.l2.misses += 1;
        now += self.cfg.l2.latency;

        // L2-level phantom?
        if allow_phantom {
            if let Some(mi) = self.ndc.morph_at(addr) {
                if self.ndc.morphs[mi].level == MorphLevel::L2 {
                    return self.phantom_fill_l2(mem, tile, mi, addr, kind, now);
                }
            }
        }

        // Prefetcher observes demand L2 misses.
        if self.cfg.prefetcher {
            self.maybe_prefetch(mem, tile, line, now);
        }

        // Shared LLC.
        let at = match self.llc_stage(mem, tile, Some(tile), kind, addr, now, allow_phantom) {
            Walk::Done { at } => at,
            blocked => return blocked,
        };
        // Fill private hierarchy.
        let state = if kind.wants_ownership() {
            PrivState::Owned
        } else {
            PrivState::Shared
        };
        self.fill_l2(mem, tile, line, state, kind, at);
        self.fill_l1(mem, tile, line, state, kind, at);
        Walk::Done { at }
    }

    // ------------------------------------------------------------------
    // Engine-side walk
    // ------------------------------------------------------------------

    /// Resolves an engine access.
    pub fn access_engine(
        &mut self,
        mem: &mut dyn levi_isa::Memory,
        eid: EngineId,
        kind: AccessKind,
        addr: Addr,
        now: u64,
        allow_phantom: bool,
    ) -> Walk {
        self.pin(addr >> LINE_SHIFT);
        let w = self.access_engine_inner(mem, eid, kind, addr, now, allow_phantom);
        self.unpin();
        w
    }

    fn access_engine_inner(
        &mut self,
        mem: &mut dyn levi_isa::Memory,
        eid: EngineId,
        kind: AccessKind,
        addr: Addr,
        now: u64,
        allow_phantom: bool,
    ) -> Walk {
        let line = addr >> LINE_SHIFT;
        let e = eid.index();
        let l1d_lat = self.engines[e].l1d_latency;

        // Stream stall gate (same as the core path): loads to an empty
        // stream's range park before any resources are charged.
        if allow_phantom && !self.ndc.morphs.is_empty() {
            if let Some(mi) = self.ndc.morph_at(addr) {
                if let Some(sid) = self.ndc.morphs[mi].stream {
                    let st = self.ndc.stream(sid);
                    if st.is_empty() && !st.closed && kind == AccessKind::Read {
                        return Walk::Blocked(WaitCond::StreamData(sid));
                    }
                }
            }
        }

        // Memory-side data bypasses the cache hierarchy entirely: the
        // engine issues the access to the memory controller (the MC's
        // FIFO line cache still absorbs same-line bursts).
        if !self.ndc.mem_side_ranges.is_empty() && self.ndc.is_mem_side(addr) {
            let mc_home = self.bank_of(addr);
            let t = self
                .noc
                .send(eid.tile, mc_home, CTRL_MSG, now, &mut self.stats);
            let at = self
                .dram
                .access_cache_line(&self.translator, line, t, &mut self.stats);
            return Walk::Done { at };
        }

        // Engine L1d: read-allocate; reads hit, and writes to resident
        // lines coalesce in place (write-back — the engine's private
        // working state, e.g. a stream producer's traversal stack and
        // cursors, stays local). Write misses and RMWs go through.
        if kind == AccessKind::Read {
            if self.engines[e].l1d.probe(line).is_some() {
                self.stats.engine_l1.hits += 1;
                return Walk::Done { at: now + l1d_lat };
            }
            self.stats.engine_l1.misses += 1;
        } else if kind == AccessKind::Write {
            if let Some(l) = self.engines[e].l1d.probe(line) {
                l.dirty = true;
                self.stats.engine_l1.hits += 1;
                return Walk::Done { at: now + l1d_lat };
            }
        }
        let now = now + l1d_lat;

        let at = match eid.level {
            EngineLevel::L2 => {
                let t = eid.tile as usize;
                if let Some(l) = self.l2[t].probe(line) {
                    if !kind.wants_ownership() || l.state == PrivState::Owned {
                        self.stats.l2.hits += 1;
                        if kind.wants_ownership() {
                            l.dirty = true;
                        }
                        let at = now + self.cfg.l2.latency;
                        self.fill_engine_l1d(mem, eid, line, kind, at);
                        return Walk::Done { at };
                    }
                }
                self.stats.l2.misses += 1;
                let now = now + self.cfg.l2.latency;
                let at = match self.llc_stage(
                    mem,
                    eid.tile,
                    Some(eid.tile),
                    kind,
                    addr,
                    now,
                    allow_phantom,
                ) {
                    Walk::Done { at } => at,
                    blocked => return blocked,
                };
                let state = if kind.wants_ownership() {
                    PrivState::Owned
                } else {
                    PrivState::Shared
                };
                self.fill_l2(mem, eid.tile, line, state, kind, at);
                at
            }
            EngineLevel::Llc => {
                // LLC engines access their home bank directly; other banks
                // over the NoC (the cost Leviathan's mapping avoids).
                match self.llc_stage(mem, eid.tile, None, kind, addr, now, allow_phantom) {
                    Walk::Done { at } => at,
                    blocked => return blocked,
                }
            }
        };
        self.fill_engine_l1d(mem, eid, line, kind, at);
        Walk::Done { at }
    }

    fn fill_engine_l1d(
        &mut self,
        mem: &mut dyn levi_isa::Memory,
        eid: EngineId,
        line: u64,
        kind: AccessKind,
        _now: u64,
    ) {
        let _ = mem;
        if kind != AccessKind::Read {
            return;
        }
        let e = eid.index();
        if self.engines[e].l1d.contains(line) {
            return;
        }
        let (_, victim) = self.engines[e].l1d.insert(line, &[]);
        if let Some(v) = victim {
            if v.dirty {
                // Write back coalesced engine writes to the attached level
                // (timing/energy accounting only; values live in flat mem).
                self.stats.llc.hits += 1;
            }
        }
    }

    // ------------------------------------------------------------------
    // LLC stage (shared by core and engine paths)
    // ------------------------------------------------------------------

    /// Handles the LLC + directory + DRAM stage. `from_tile` is where the
    /// request physically originates (for NoC routing); `new_sharer` is the
    /// tile whose private caches will hold the line afterwards (None for
    /// LLC-engine accesses, which stay at the bank).
    #[allow(clippy::too_many_arguments)]
    fn llc_stage(
        &mut self,
        mem: &mut dyn levi_isa::Memory,
        from_tile: u32,
        new_sharer: Option<u32>,
        kind: AccessKind,
        addr: Addr,
        now: u64,
        allow_phantom: bool,
    ) -> Walk {
        let line = addr >> LINE_SHIFT;
        let bank = self.bank_of(addr);
        let mut t = self
            .noc
            .send(from_tile, bank, CTRL_MSG, now, &mut self.stats);
        t += self.cfg.llc.latency;
        self.stats.dir_lookups += 1;

        let hit = self.llc[bank as usize].probe(line).is_some();
        if hit {
            self.stats.llc.hits += 1;
        } else {
            self.stats.llc.misses += 1;
            // LLC miss: phantom construction or DRAM fetch.
            if allow_phantom {
                if let Some(mi) = self.ndc.morph_at(addr) {
                    if self.ndc.morphs[mi].level == MorphLevel::Llc {
                        match self.phantom_fill_llc(mem, bank, mi, addr, t) {
                            Walk::Done { at } => t = at,
                            blocked => return blocked,
                        }
                    } else {
                        // L2-level morph data must never reach the LLC.
                        t = self.dram_fetch_into_llc(mem, bank, line, t);
                    }
                } else {
                    t = self.dram_fetch_into_llc(mem, bank, line, t);
                }
            } else if kind == AccessKind::Write && self.ndc.is_stream_store(addr) {
                // Streaming store: the line will be fully overwritten, so
                // skip the write-allocate fetch (write-combining).
                let (l, victim) = self.llc[bank as usize].insert(line, &self.pins);
                l.dirty = true;
                if let Some(v) = victim {
                    self.handle_llc_victim(mem, bank, v, t);
                }
            } else {
                t = self.dram_fetch_into_llc(mem, bank, line, t);
            }
        }

        // Directory actions on the (now-present) line.
        t = self.directory_actions(mem, bank, line, new_sharer, kind, t);

        // Data response back to the requester.
        let t = self.noc.send(bank, from_tile, DATA_MSG, t, &mut self.stats);
        Walk::Done { at: t }
    }

    /// Fetches `line` from DRAM and inserts it into `bank`, handling the
    /// victim. Returns the completion time.
    fn dram_fetch_into_llc(
        &mut self,
        mem: &mut dyn levi_isa::Memory,
        bank: u32,
        line: u64,
        now: u64,
    ) -> u64 {
        let t = self
            .dram
            .access_cache_line(&self.translator, line, now, &mut self.stats);
        let (_, victim) = self.llc[bank as usize].insert(line, &self.pins);
        if let Some(v) = victim {
            self.handle_llc_victim(mem, bank, v, now);
        }
        t
    }

    /// Enforces coherence for a request on a resident LLC line.
    fn directory_actions(
        &mut self,
        _mem: &mut dyn levi_isa::Memory,
        bank: u32,
        line: u64,
        new_sharer: Option<u32>,
        kind: AccessKind,
        now: u64,
    ) -> u64 {
        let b = bank as usize;
        let (owner, sharers) = match self.llc[b].peek(line) {
            Some(l) => (l.owner, l.sharers),
            None => return now,
        };
        let mut t = now;

        if kind.wants_ownership() {
            // Invalidate every other private copy.
            let mut mask = sharers;
            if let Some(o) = owner {
                mask |= 1 << o;
            }
            if let Some(ns) = new_sharer {
                mask &= !(1u64 << ns);
            }
            let mut t_inv = t;
            let mut any = false;
            for s in 0..self.cfg.tiles {
                if mask & (1 << s) == 0 {
                    continue;
                }
                any = true;
                let ta = self.noc.send(bank, s, INVAL_MSG, t, &mut self.stats);
                let dirty = self.invalidate_private(s, line);
                self.stats.invalidations += 1;
                self.stats.trace.record(|| {
                    TraceEvent::instant(
                        ta,
                        TraceCategory::Coherence,
                        "coh.inval",
                        Track::Core(s),
                        &[("line", line), ("dirty", dirty as u64)],
                    )
                });
                let mut tr = ta + self.cfg.l2.latency;
                if dirty {
                    // Dirty data returns with the ack.
                    tr = self.noc.send(s, bank, DATA_MSG, tr, &mut self.stats);
                    if let Some(l) = self.llc[b].peek_mut(line) {
                        l.dirty = true;
                    }
                } else {
                    tr = self.noc.send(s, bank, INVAL_MSG, tr, &mut self.stats);
                }
                t_inv = t_inv.max(tr);
            }
            if owner.is_some() && owner != new_sharer.map(|x| x as u8) {
                self.stats.ownership_transfers += 1;
                let from = owner.unwrap_or(0) as u64;
                self.stats.trace.record(|| {
                    TraceEvent::instant(
                        t,
                        TraceCategory::Coherence,
                        "coh.xfer",
                        Track::Core(bank),
                        &[("line", line), ("from", from)],
                    )
                });
            }
            if any {
                t = t_inv;
            }
            if let Some(l) = self.llc[b].peek_mut(line) {
                l.sharers = new_sharer.map_or(0, |ns| 1u64 << ns);
                l.owner = new_sharer.map(|ns| ns as u8);
                if new_sharer.is_none() {
                    // Engine write at the bank: the LLC copy is the only
                    // copy and is now dirty.
                    l.dirty = true;
                }
            }
        } else {
            // Read: downgrade a remote exclusive owner if present.
            if let Some(o) = owner {
                if Some(o as u32) != new_sharer {
                    let ta = self.noc.send(bank, o as u32, CTRL_MSG, t, &mut self.stats);
                    let tb = ta + self.cfg.l2.latency;
                    let tr = self.noc.send(o as u32, bank, DATA_MSG, tb, &mut self.stats);
                    // Downgrade owner to sharer.
                    if let Some(l) = self.l2[o as usize].peek_mut(line) {
                        l.state = PrivState::Shared;
                    }
                    if let Some(l) = self.l1[o as usize].peek_mut(line) {
                        l.state = PrivState::Shared;
                    }
                    self.stats.ownership_transfers += 1;
                    self.stats.trace.record(|| {
                        TraceEvent::instant(
                            tr,
                            TraceCategory::Coherence,
                            "coh.xfer",
                            Track::Core(bank),
                            &[("line", line), ("from", o as u64)],
                        )
                    });
                    if let Some(l) = self.llc[b].peek_mut(line) {
                        l.dirty = true;
                        l.sharers |= 1 << o;
                        l.owner = None;
                    }
                    t = tr;
                }
            }
            if let Some(ns) = new_sharer {
                if let Some(l) = self.llc[b].peek_mut(line) {
                    l.sharers |= 1u64 << ns;
                    if l.owner == Some(ns as u8) {
                        l.owner = None;
                    }
                }
            }
        }
        t
    }

    /// Invalidates `line` from tile `s`'s L1+L2; returns whether a dirty
    /// copy existed.
    fn invalidate_private(&mut self, s: u32, line: u64) -> bool {
        let mut dirty = false;
        if let Some(l) = self.l1[s as usize].invalidate(line) {
            dirty |= l.dirty;
        }
        if let Some(l) = self.l2[s as usize].invalidate(line) {
            dirty |= l.dirty;
        }
        dirty
    }

    // ------------------------------------------------------------------
    // Fills and victims
    // ------------------------------------------------------------------

    fn fill_l1(
        &mut self,
        _mem: &mut dyn levi_isa::Memory,
        tile: u32,
        line: u64,
        state: PrivState,
        kind: AccessKind,
        now: u64,
    ) {
        let t = tile as usize;
        if let Some(l) = self.l1[t].peek_mut(line) {
            l.state = state;
            if kind.wants_ownership() {
                l.dirty = true;
            }
            return;
        }
        let (l, victim) = self.l1[t].insert(line, &self.pins);
        l.state = state;
        l.dirty = kind.wants_ownership();
        if let Some(v) = victim {
            if v.dirty {
                // Write into the L2 copy.
                if let Some(l2l) = self.l2[t].peek_mut(v.line) {
                    l2l.dirty = true;
                } else {
                    // L2 already lost it; fold into LLC if present.
                    let bank = self.bank_of(v.line << LINE_SHIFT) as usize;
                    if let Some(ll) = self.llc[bank].peek_mut(v.line) {
                        ll.dirty = true;
                    }
                }
            }
        }
        let _ = now;
    }

    fn fill_l2(
        &mut self,
        mem: &mut dyn levi_isa::Memory,
        tile: u32,
        line: u64,
        state: PrivState,
        kind: AccessKind,
        now: u64,
    ) {
        let t = tile as usize;
        if let Some(l) = self.l2[t].peek_mut(line) {
            l.state = state;
            if kind.wants_ownership() {
                l.dirty = true;
            }
            return;
        }
        let (l, victim) = self.l2[t].insert(line, &self.pins);
        l.state = state;
        l.dirty = kind.wants_ownership();
        if let Some(v) = victim {
            self.handle_l2_victim(mem, tile, v, now);
        }
    }

    /// Handles an L2 eviction: destructor-tagged lines run their Morph
    /// destructor on the tile's L2 engine; dirty lines write back to the
    /// LLC (or DRAM if the LLC no longer holds them).
    pub fn handle_l2_victim(
        &mut self,
        mem: &mut dyn levi_isa::Memory,
        tile: u32,
        victim: crate::cache::Line,
        now: u64,
    ) -> u64 {
        // Keep L1 inclusive with L2.
        let l1_dirty = self.l1[tile as usize]
            .invalidate(victim.line)
            .is_some_and(|l| l.dirty);
        let dirty = victim.dirty || l1_dirty;

        if victim.dtor {
            let eid = EngineId {
                tile,
                level: EngineLevel::L2,
            };
            return self.dtor_or_queue(mem, eid, victim.line, dirty, now, MorphLevel::L2, tile);
        }
        if dirty {
            // L2-level phantom data never leaves the private caches.
            if self
                .ndc
                .morph_at(victim.line << LINE_SHIFT)
                .is_some_and(|mi| self.ndc.morphs[mi].level == MorphLevel::L2)
            {
                return now;
            }
            self.stats.l2.writebacks += 1;
            let addr = victim.line << LINE_SHIFT;
            let bank = self.bank_of(addr);
            let t = self.noc.send(tile, bank, DATA_MSG, now, &mut self.stats);
            self.stats.llc.hits += 1; // writeback access at the bank
            if let Some(l) = self.llc[bank as usize].peek_mut(victim.line) {
                l.dirty = true;
                if l.owner == Some(tile as u8) {
                    l.owner = None;
                }
                l.sharers &= !(1u64 << tile);
                return t + self.cfg.llc.latency;
            }
            // Not in LLC (phantom or already evicted): write to DRAM.
            return self
                .dram
                .access_cache_line(&self.translator, victim.line, t, &mut self.stats);
        }
        now
    }

    /// Handles an LLC eviction: invalidates private copies (inclusion),
    /// invalidates the bank engine's L1d, runs destructors for
    /// destructor-tagged lines, and writes back dirty data.
    pub fn handle_llc_victim(
        &mut self,
        mem: &mut dyn levi_isa::Memory,
        bank: u32,
        victim: crate::cache::Line,
        now: u64,
    ) -> u64 {
        let mut t = now;
        let mut dirty = victim.dirty;
        // Inclusion: strip private copies.
        let mut mask = victim.sharers;
        if let Some(o) = victim.owner {
            mask |= 1 << o;
        }
        for s in 0..self.cfg.tiles {
            if mask & (1 << s) == 0 {
                continue;
            }
            let ta = self.noc.send(bank, s, INVAL_MSG, t, &mut self.stats);
            self.stats.invalidations += 1;
            dirty |= self.invalidate_private(s, victim.line);
            let line = victim.line;
            self.stats.trace.record(|| {
                TraceEvent::instant(
                    ta,
                    TraceCategory::Coherence,
                    "coh.inval",
                    Track::Core(s),
                    &[("line", line)],
                )
            });
            t = t.max(ta + self.cfg.l2.latency);
        }
        // The bank engine's L1d must not outlive the LLC copy (it would
        // see stale phantom data after a destructor runs).
        let eid = EngineId {
            tile: bank,
            level: EngineLevel::Llc,
        };
        self.engines[eid.index()].l1d.invalidate(victim.line);

        if victim.dtor {
            return self.dtor_or_queue(mem, eid, victim.line, dirty, t, MorphLevel::Llc, bank);
        }
        if dirty {
            // Phantom (Morph) data has no DRAM backing: a dirty phantom
            // line without a destructor is simply dropped.
            if self.ndc.morph_at(victim.line << LINE_SHIFT).is_some() {
                return t;
            }
            self.stats.llc.writebacks += 1;
            return self
                .dram
                .access_cache_line(&self.translator, victim.line, t, &mut self.stats);
        }
        t
    }

    /// Runs the Morph destructor(s) for an evicted line: one per object for
    /// sub-line objects, or a single destructor (after gathering all of the
    /// object's lines) for multi-line objects.
    #[allow(clippy::too_many_arguments)]
    fn run_dtors_for_line(
        &mut self,
        mem: &mut dyn levi_isa::Memory,
        eid: EngineId,
        line: u64,
        dirty: bool,
        now: u64,
        level: MorphLevel,
        home: u32,
    ) -> u64 {
        let addr = line << LINE_SHIFT;
        let Some(mi) = self.ndc.morph_at(addr) else {
            // Morph was unregistered; drop the line.
            return now;
        };
        let m = self.ndc.morphs[mi].clone();
        debug_assert_eq!(m.level, level);
        let Some(dtor) = m.dtor else {
            return now;
        };
        let mut t = now;
        if m.is_multiline() {
            // Evict the object's other lines too, then run one destructor.
            let obj = m.obj_base(addr);
            let lines = m.obj_size / LINE_SIZE;
            let mut any_dirty = dirty;
            for k in 0..lines {
                let l = (obj >> LINE_SHIFT) + k;
                if l == line {
                    continue;
                }
                match level {
                    MorphLevel::Llc => {
                        let b = self.bank_of(l << LINE_SHIFT);
                        if let Some(v) = self.llc[b as usize].invalidate(l) {
                            any_dirty |= v.dirty;
                            // Inclusion: strip private copies of the sibling.
                            let mut mask = v.sharers;
                            if let Some(o) = v.owner {
                                mask |= 1 << o;
                            }
                            for sh in 0..self.cfg.tiles {
                                if mask & (1 << sh) != 0 {
                                    any_dirty |= self.invalidate_private(sh, l);
                                    self.stats.invalidations += 1;
                                    self.stats.trace.record(|| {
                                        TraceEvent::instant(
                                            t,
                                            TraceCategory::Coherence,
                                            "coh.inval",
                                            Track::Core(sh),
                                            &[("line", l)],
                                        )
                                    });
                                }
                            }
                            let e2 = EngineId {
                                tile: b,
                                level: EngineLevel::Llc,
                            };
                            self.engines[e2.index()].l1d.invalidate(l);
                        }
                    }
                    MorphLevel::L2 => {
                        if let Some(v) = self.l2[home as usize].invalidate(l) {
                            any_dirty |= v.dirty;
                        }
                        self.l1[home as usize].invalidate(l);
                    }
                }
            }
            self.stats.dtor_actions += 1;
            let span = (obj, obj + m.obj_size.max(LINE_SIZE));
            t = self.run_inline_action(
                mem,
                eid,
                &m_action(&self.ndc, dtor),
                &[obj, m.view, any_dirty as u64],
                t,
                Some(span),
            );
        } else {
            // Sub-line objects: the scheduler runs all the line's object
            // destructors in parallel (FU limits still apply through the
            // engine cursors).
            let objs = LINE_SIZE / m.obj_size;
            let aref = m_action(&self.ndc, dtor);
            let mut t_max = now;
            for k in 0..objs {
                let obj = addr + k * m.obj_size;
                if obj >= m.bound {
                    break;
                }
                self.stats.dtor_actions += 1;
                let span = (addr, addr + LINE_SIZE);
                t_max = t_max.max(self.run_inline_action(
                    mem,
                    eid,
                    &aref,
                    &[obj, m.view, dirty as u64],
                    now,
                    Some(span),
                ));
            }
            t = t_max;
        }
        t
    }

    // ------------------------------------------------------------------
    // Phantom (data-triggered) fills
    // ------------------------------------------------------------------

    /// L2-level phantom miss: run constructors on the tile's L2 engine and
    /// install the object's line(s) into L2 (and the missed line into L1).
    fn phantom_fill_l2(
        &mut self,
        mem: &mut dyn levi_isa::Memory,
        tile: u32,
        mi: usize,
        addr: Addr,
        kind: AccessKind,
        now: u64,
    ) -> Walk {
        let m = self.ndc.morphs[mi].clone();
        // Stream-backed phantoms stall when the producer has not yet
        // pushed the entry being read (paper Sec. VI-B3).
        if let Some(sid) = m.stream {
            let s = self.ndc.stream(sid);
            if s.is_empty() && !s.closed {
                return Walk::Blocked(WaitCond::StreamData(sid));
            }
        }
        let eid = EngineId {
            tile,
            level: EngineLevel::L2,
        };
        let mut t = now;
        let (obj, lines) = if m.is_multiline() {
            (m.obj_base(addr), m.obj_size / LINE_SIZE)
        } else {
            (addr & !(LINE_SIZE - 1), 1)
        };

        t = self.run_ctors(mem, eid, &m, obj, t);

        // Install all lines of the object (or the one line) into L2.
        let has_dtor = m.dtor.is_some();
        for k in 0..lines {
            let line = (obj >> LINE_SHIFT) + k;
            if self.l2[tile as usize].contains(line) {
                continue;
            }
            let (l, victim) = self.l2[tile as usize].insert(line, &self.pins);
            l.state = PrivState::Owned;
            l.dtor = has_dtor;
            l.dirty = false;
            if let Some(v) = victim {
                self.handle_l2_victim(mem, tile, v, t);
            }
        }
        self.fill_l1(mem, tile, addr >> LINE_SHIFT, PrivState::Owned, kind, t);
        if kind.wants_ownership() {
            if let Some(l) = self.l2[tile as usize].peek_mut(addr >> LINE_SHIFT) {
                l.dirty = true;
            }
        }
        Walk::Done {
            at: t + self.cfg.l2.latency,
        }
    }

    /// LLC-level phantom miss: run constructors on the bank's engine and
    /// install the object's line(s) into the LLC.
    fn phantom_fill_llc(
        &mut self,
        mem: &mut dyn levi_isa::Memory,
        bank: u32,
        mi: usize,
        addr: Addr,
        now: u64,
    ) -> Walk {
        let m = self.ndc.morphs[mi].clone();
        if let Some(sid) = m.stream {
            let s = self.ndc.stream(sid);
            if s.is_empty() && !s.closed {
                return Walk::Blocked(WaitCond::StreamData(sid));
            }
        }
        let eid = EngineId {
            tile: bank,
            level: EngineLevel::Llc,
        };
        let (obj, lines) = if m.is_multiline() {
            (m.obj_base(addr), m.obj_size / LINE_SIZE)
        } else {
            (addr & !(LINE_SIZE - 1), 1)
        };
        let t = self.run_ctors(mem, eid, &m, obj, now);
        let has_dtor = m.dtor.is_some();
        for k in 0..lines {
            let line = (obj >> LINE_SHIFT) + k;
            let b = self.bank_of(line << LINE_SHIFT) as usize;
            if self.llc[b].contains(line) {
                continue;
            }
            let (l, victim) = self.llc[b].insert(line, &self.pins);
            l.dtor = has_dtor;
            l.dirty = false;
            if let Some(v) = victim {
                self.handle_llc_victim(mem, b as u32, v, t);
            }
        }
        Walk::Done { at: t }
    }

    /// Runs the constructor(s) covering the line/object at `obj`.
    fn run_ctors(
        &mut self,
        mem: &mut dyn levi_isa::Memory,
        eid: EngineId,
        m: &crate::ndc::MorphRegion,
        obj: Addr,
        now: u64,
    ) -> u64 {
        let mut t = now;
        match m.ctor {
            Some(ctor) => {
                let aref = m_action(&self.ndc, ctor);
                if m.is_multiline() {
                    self.stats.ctor_actions += 1;
                    let span = (obj, obj + m.obj_size);
                    t = self.run_inline_action(mem, eid, &aref, &[obj, m.view], t, Some(span));
                } else {
                    // Parallel per-object constructors (see destructors).
                    let span = (obj, obj + LINE_SIZE);
                    let objs = LINE_SIZE / m.obj_size.min(LINE_SIZE);
                    let mut t_max = t;
                    for k in 0..objs.max(1) {
                        let oa = obj + k * m.obj_size;
                        if oa >= m.bound {
                            break;
                        }
                        self.stats.ctor_actions += 1;
                        t_max = t_max.max(self.run_inline_action(
                            mem,
                            eid,
                            &aref,
                            &[oa, m.view],
                            t,
                            Some(span),
                        ));
                    }
                    t = t_max;
                }
            }
            None => {
                if let Some(sid) = m.stream {
                    // Built-in stream constructor: read the buffer line
                    // through the hierarchy and copy it into the phantom
                    // line (2 engine memory ops per word).
                    self.stats.ctor_actions += 1;
                    let words = LINE_SIZE / 8;
                    let mut done = t;
                    for _ in 0..words {
                        let slot = self.engines[eid.index()].reserve_mem(t);
                        done = done.max(slot + self.engines[eid.index()].latency());
                        self.stats.engine_instrs += 2;
                    }
                    // One read of the underlying buffer line.
                    let buf_line_addr = obj; // phantom range *is* the ring buffer
                    if let Walk::Done { at } =
                        self.access_engine(mem, eid, AccessKind::Read, buf_line_addr, t, false)
                    {
                        done = done.max(at);
                    }
                    let _ = sid;
                    t = done;
                } else {
                    // Default constructor: zero-fill the constructed
                    // span, clamped to the Morph's bound (the tail line
                    // may be shared with unrelated allocations).
                    let span = m.obj_size.max(LINE_SIZE).min(m.bound.saturating_sub(obj));
                    mem.fill(obj, span, 0);
                    self.stats.ctor_actions += 1;
                    let slot = self.engines[eid.index()].reserve_mem(t);
                    t = slot + self.engines[eid.index()].latency();
                    self.stats.engine_instrs += LINE_SIZE / 8;
                }
            }
        }
        t
    }

    // ------------------------------------------------------------------
    // Inline action execution (data-triggered ctors/dtors)
    // ------------------------------------------------------------------

    /// Executes a short action to completion on `eid`'s dataflow fabric,
    /// charging FU slots and walking the hierarchy for its memory accesses
    /// (with phantom triggering disabled — data-triggered actions must not
    /// nest). Returns the completion time.
    ///
    /// `local` is the byte range of the line(s) being constructed or
    /// destructed: accesses inside it hit the engine's line buffer
    /// directly (the data is in flight through the engine) instead of
    /// walking the hierarchy.
    pub fn run_inline_action(
        &mut self,
        mem: &mut dyn levi_isa::Memory,
        eid: EngineId,
        aref: &crate::ndc::ActionRef,
        args: &[u64],
        start: u64,
        local: Option<(Addr, Addr)>,
    ) -> u64 {
        let prog: &Program = &aref.prog;
        let mut ctx = ExecCtx::new(aref.func, args);
        let mut reg_ready = [start; levi_isa::NUM_REGS];
        let mut done_max = start;
        let mut host = NoNdc;
        let mut fuel: u64 = 5_000_000;
        self.inline_depth += 1;
        while !ctx.halted {
            assert!(
                fuel > 0,
                "inline action ran out of fuel: {}",
                prog.func(aref.func).name()
            );
            fuel -= 1;
            let inst = &prog.func(ctx.pc.func).insts()[ctx.pc.idx as usize];
            let mut ready = start;
            inst.for_each_use(|r| ready = ready.max(reg_ready[r.index()]));
            let class = inst.class();
            let def = inst.def();
            let is_mem = class == InstClass::Mem;

            // Compute the memory address before stepping (the walk may run
            // nothing here — phantom is disabled — but must charge time).
            let slot = if is_mem {
                self.engines[eid.index()].reserve_mem(ready)
            } else {
                self.engines[eid.index()].reserve_int(ready)
            };
            let info =
                exec::step(prog, &mut ctx, mem, &mut host).expect("inline action execution failed");
            debug_assert!(info.retired(), "inline actions cannot block");
            self.stats.engine_instrs += 1;

            let mut complete = slot + self.engines[eid.index()].latency();
            if let Some(effect) = info.mem {
                let (kind, addr) = match effect {
                    MemEffect::Load { addr, .. } => (AccessKind::Read, addr),
                    MemEffect::Store { addr, .. } => (AccessKind::Write, addr),
                    MemEffect::Rmw { addr, .. } => (AccessKind::Rmw, addr),
                    MemEffect::Fence => (AccessKind::Read, 0),
                };
                let is_local = local.is_some_and(|(lo, hi)| addr >= lo && addr < hi);
                if !matches!(effect, MemEffect::Fence) && !is_local {
                    match self.access_engine(mem, eid, kind, addr, slot, false) {
                        Walk::Done { at } => complete = at,
                        Walk::Blocked(_) => unreachable!("non-phantom walks cannot block"),
                    }
                }
            } else {
                match class {
                    InstClass::Mul => complete += 2,
                    InstClass::Div => complete += 11,
                    _ => {}
                }
            }
            if let Some(rd) = def {
                reg_ready[rd.index()] = complete;
            }
            done_max = done_max.max(complete);
        }
        self.inline_depth -= 1;
        if self.inline_depth == 0 {
            // Destructors deferred by this action's own evictions must run
            // now — leaving them queued would let a later constructor
            // zero-fill their unapplied data.
            self.drain_pending_dtors(mem);
        }
        done_max
    }

    /// Iteratively runs all deferred destructors (each may defer more).
    fn drain_pending_dtors(&mut self, mem: &mut dyn levi_isa::Memory) {
        while let Some(p) = self.pending_dtors.pop() {
            self.run_dtors_for_line(mem, p.eid, p.line, p.dirty, p.at, p.level, p.home);
        }
    }

    // ------------------------------------------------------------------
    // Prefetcher
    // ------------------------------------------------------------------

    fn maybe_prefetch(&mut self, mem: &mut dyn levi_isa::Memory, tile: u32, line: u64, now: u64) {
        let Some(stride) = self.prefetchers[tile as usize].observe(line) else {
            return;
        };
        for d in 1..=self.cfg.prefetch_degree as i64 {
            let pf_line = line.wrapping_add((stride * d) as u64);
            let pf_addr = pf_line << LINE_SHIFT;
            if self.l2[tile as usize].contains(pf_line) {
                continue;
            }
            // Never prefetch phantom data (the hardware NACKs those).
            if self.ndc.morph_at(pf_addr).is_some() {
                continue;
            }
            self.stats.prefetches += 1;
            if let Walk::Done { .. } =
                self.llc_stage(mem, tile, Some(tile), AccessKind::Read, pf_addr, now, false)
            {
                self.fill_l2(mem, tile, pf_line, PrivState::Shared, AccessKind::Read, now);
            }
        }
    }

    /// Flushes `[base, base+len)` from every cache, running destructors for
    /// tagged lines. Returns the completion time. Used by Morph
    /// unregistration (`flush` instruction).
    pub fn flush_range(
        &mut self,
        mem: &mut dyn levi_isa::Memory,
        base: Addr,
        len: u64,
        now: u64,
    ) -> u64 {
        let bound = base + len;
        let mut t = now;
        for tile in 0..self.cfg.tiles {
            let l1_dirty: std::collections::HashSet<u64> = self.l1[tile as usize]
                .drain_range(base, bound)
                .into_iter()
                .filter(|l| l.dirty)
                .map(|l| l.line)
                .collect();
            for mut v in self.l2[tile as usize].drain_range(base, bound) {
                v.dirty |= l1_dirty.contains(&v.line);
                t = t.max(self.handle_l2_victim_flush(mem, tile, v, now));
            }
        }
        for bank in 0..self.cfg.tiles {
            for v in self.llc[bank as usize].drain_range(base, bound) {
                t = t.max(self.handle_llc_victim(mem, bank, v, now));
            }
            let eid = EngineId {
                tile: bank,
                level: EngineLevel::Llc,
            };
            self.engines[eid.index()].l1d.drain_range(base, bound);
            let eid2 = EngineId {
                tile: bank,
                level: EngineLevel::L2,
            };
            self.engines[eid2.index()].l1d.drain_range(base, bound);
        }
        t
    }

    /// L2 victim handling for flush paths, where the L1 copy was already
    /// drained.
    fn handle_l2_victim_flush(
        &mut self,
        mem: &mut dyn levi_isa::Memory,
        tile: u32,
        victim: crate::cache::Line,
        now: u64,
    ) -> u64 {
        if victim.dtor {
            let eid = EngineId {
                tile,
                level: EngineLevel::L2,
            };
            return self.dtor_or_queue(
                mem,
                eid,
                victim.line,
                victim.dirty,
                now,
                MorphLevel::L2,
                tile,
            );
        }
        if victim.dirty {
            self.stats.l2.writebacks += 1;
        }
        now
    }

    /// Runs a victim's destructor(s) now, or — when already inside an
    /// inline action — defers them to the engine's actor buffer so
    /// eviction cascades resolve iteratively instead of recursively.
    #[allow(clippy::too_many_arguments)]
    fn dtor_or_queue(
        &mut self,
        mem: &mut dyn levi_isa::Memory,
        eid: EngineId,
        line: u64,
        dirty: bool,
        now: u64,
        level: MorphLevel,
        home: u32,
    ) -> u64 {
        if self.inline_depth > 0 {
            self.pending_dtors.push(PendingDtor {
                eid,
                line,
                dirty,
                at: now,
                level,
                home,
            });
            return now;
        }
        let mut t = self.run_dtors_for_line(mem, eid, line, dirty, now, level, home);
        while let Some(p) = self.pending_dtors.pop() {
            t = t.max(self.run_dtors_for_line(mem, p.eid, p.line, p.dirty, p.at, p.level, p.home));
        }
        t
    }
}

/// Clones the action reference out of the table (the borrow checker
/// requires ending the `ndc` borrow before running the action).
fn m_action(ndc: &NdcState, id: levi_isa::ActionId) -> crate::ndc::ActionRef {
    ndc.actions
        .get(id)
        .expect("morph ctor/dtor action not registered")
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use levi_isa::{Memory, PagedMem};

    fn hw() -> Hw {
        let mut cfg = MachineConfig::paper_default();
        cfg.prefetcher = false;
        Hw::new(cfg)
    }

    fn done(w: Walk) -> u64 {
        match w {
            Walk::Done { at } => at,
            Walk::Blocked(c) => panic!("unexpectedly blocked: {c:?}"),
        }
    }

    #[test]
    fn first_access_misses_to_dram_then_hits_l1() {
        let mut h = hw();
        let mut mem = PagedMem::new();
        let t1 = done(h.access_core(&mut mem, 0, AccessKind::Read, 0x1000, 0, true));
        assert!(t1 >= h.cfg.mem.latency, "cold miss reaches DRAM: {t1}");
        assert_eq!(h.stats.dram_accesses, 1);
        let t2 = done(h.access_core(&mut mem, 0, AccessKind::Read, 0x1008, t1, true));
        assert_eq!(t2, t1 + h.cfg.l1.latency, "same line now hits L1");
        assert_eq!(h.stats.l1.hits, 1);
    }

    #[test]
    fn read_read_shares_write_invalidates() {
        let mut h = hw();
        let mut mem = PagedMem::new();
        let addr = 0x2000;
        done(h.access_core(&mut mem, 0, AccessKind::Read, addr, 0, true));
        done(h.access_core(&mut mem, 1, AccessKind::Read, addr, 1000, true));
        let bank = h.bank_of(addr) as usize;
        let line = addr >> LINE_SHIFT;
        let l = h.llc[bank].peek(line).unwrap();
        assert_eq!(l.sharers & 0b11, 0b11, "both tiles share");
        assert_eq!(h.stats.invalidations, 0);

        done(h.access_core(&mut mem, 2, AccessKind::Write, addr, 2000, true));
        assert_eq!(h.stats.invalidations, 2, "both sharers invalidated");
        let l = h.llc[bank].peek(line).unwrap();
        assert_eq!(l.owner, Some(2));
        assert!(!h.l1[0].contains(line));
        assert!(!h.l2[1].contains(line));
    }

    #[test]
    fn rmw_ping_pong_transfers_ownership() {
        let mut h = hw();
        let mut mem = PagedMem::new();
        let addr = 0x3000;
        done(h.access_core(&mut mem, 0, AccessKind::Rmw, addr, 0, true));
        done(h.access_core(&mut mem, 1, AccessKind::Rmw, addr, 1000, true));
        done(h.access_core(&mut mem, 0, AccessKind::Rmw, addr, 2000, true));
        assert!(h.stats.ownership_transfers >= 2, "ping-pong counted");
        assert!(h.stats.invalidations >= 2);
    }

    #[test]
    fn owned_then_remote_read_downgrades() {
        let mut h = hw();
        let mut mem = PagedMem::new();
        let addr = 0x4000;
        done(h.access_core(&mut mem, 3, AccessKind::Write, addr, 0, true));
        done(h.access_core(&mut mem, 4, AccessKind::Read, addr, 1000, true));
        let bank = h.bank_of(addr) as usize;
        let line = addr >> LINE_SHIFT;
        let l = h.llc[bank].peek(line).unwrap();
        assert_eq!(l.owner, None, "owner downgraded");
        assert!(l.sharers & (1 << 3) != 0);
        assert!(l.sharers & (1 << 4) != 0);
        assert_eq!(
            h.l2[3].peek(line).unwrap().state,
            PrivState::Shared,
            "old owner now shared"
        );
    }

    #[test]
    fn engine_llc_access_local_vs_remote_bank() {
        let mut h = hw();
        let mut mem = PagedMem::new();
        // Bank of 0x0000 line 0 -> bank 0.
        let local = EngineId {
            tile: 0,
            level: EngineLevel::Llc,
        };
        let t_local = done(h.access_engine(&mut mem, local, AccessKind::Read, 0x0, 0, true));
        // Line 1 -> bank 1: remote from tile 0's engine.
        let t_remote = done(h.access_engine(&mut mem, local, AccessKind::Read, 0x40, 0, true));
        assert!(
            t_remote > t_local,
            "remote bank access pays NoC: {t_local} vs {t_remote}"
        );
    }

    #[test]
    fn engine_l1d_caches_reads() {
        let mut h = hw();
        let mut mem = PagedMem::new();
        let eid = EngineId {
            tile: 0,
            level: EngineLevel::Llc,
        };
        let t1 = done(h.access_engine(&mut mem, eid, AccessKind::Read, 0x0, 0, true));
        let t2 = done(h.access_engine(&mut mem, eid, AccessKind::Read, 0x8, t1, true));
        assert_eq!(t2, t1 + h.cfg.engine.l1d_latency);
        assert_eq!(h.stats.engine_l1.hits, 1);
    }

    #[test]
    fn default_ctor_zero_fills_phantom() {
        let mut h = hw();
        let mut mem = PagedMem::new();
        // Pre-pollute memory so the zero-fill is observable.
        mem.write_u64(0x10_0000, 0xDEAD);
        h.ndc.register_morph(crate::ndc::MorphRegion {
            base: 0x10_0000,
            bound: 0x10_1000,
            level: MorphLevel::Llc,
            obj_size: 8,
            ctor: None,
            dtor: None,
            view: 0,
            stream: None,
        });
        let eid = EngineId {
            tile: h.bank_of(0x10_0000),
            level: EngineLevel::Llc,
        };
        let _ = eid;
        done(h.access_engine(
            &mut mem,
            EngineId {
                tile: h.bank_of(0x10_0000),
                level: EngineLevel::Llc,
            },
            AccessKind::Rmw,
            0x10_0000,
            0,
            true,
        ));
        assert_eq!(mem.read_u64(0x10_0000), 0, "constructor zero-filled");
        assert!(h.stats.ctor_actions >= 1);
        assert_eq!(h.stats.dram_accesses, 0, "phantom data never touches DRAM");
    }

    #[test]
    fn bank_mapping_keeps_multiline_object_together() {
        let mut h = hw();
        let base = 0x20_0000u64;
        // Without mapping, lines 0 and 1 of an object go to different banks.
        assert_ne!(h.bank_of(base), h.bank_of(base + 64));
        h.ndc.bank_maps.push(crate::ndc::BankMapRange {
            base,
            bound: base + 0x1000,
            ignore_line_bits: 1,
        });
        assert_eq!(h.bank_of(base), h.bank_of(base + 64));
        assert_ne!(h.bank_of(base), h.bank_of(base + 128));
    }

    #[test]
    fn flush_runs_destructors_for_tagged_lines() {
        let mut h = hw();
        let mut mem = PagedMem::new();
        h.ndc.register_morph(crate::ndc::MorphRegion {
            base: 0x30_0000,
            bound: 0x30_1000,
            level: MorphLevel::Llc,
            obj_size: 8,
            ctor: None,
            dtor: None,
            view: 0,
            stream: None,
        });
        let eid = EngineId {
            tile: h.bank_of(0x30_0000),
            level: EngineLevel::Llc,
        };
        done(h.access_engine(&mut mem, eid, AccessKind::Write, 0x30_0000, 0, true));
        let bank = h.bank_of(0x30_0000) as usize;
        assert!(h.llc[bank].contains(0x30_0000 >> LINE_SHIFT));
        h.flush_range(&mut mem, 0x30_0000, 0x1000, 100);
        assert!(!h.llc[bank].contains(0x30_0000 >> LINE_SHIFT));
    }

    #[test]
    fn llc_capacity_eviction_writes_back_dirty() {
        let mut h = hw();
        let mut mem = PagedMem::new();
        // Fill one LLC set beyond capacity with dirty lines from tile 0.
        // Set index repeats every sets*banks lines for bank 0.
        let sets = h.cfg.llc.sets();
        let stride = sets * h.cfg.tiles as u64 * LINE_SIZE; // same bank, same set
        let mut t = 0;
        for i in 0..(h.cfg.llc.ways as u64 + 2) {
            let addr = 0x100_0000 + i * stride;
            assert_eq!(h.bank_of(addr), h.bank_of(0x100_0000));
            t = done(h.access_core(&mut mem, 0, AccessKind::Write, addr, t, true)) + 1;
        }
        assert!(h.stats.llc.writebacks >= 1, "dirty victims written back");
        assert!(
            h.stats.dram_accesses > h.cfg.llc.ways as u64,
            "writebacks reach DRAM"
        );
    }
}
