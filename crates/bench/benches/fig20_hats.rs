//! Fig. 20 — HATS: decoupled BDFS graph traversal (one PageRank
//! iteration on a community-structured graph).
//!
//! Paper: software BDFS 1.2×, tākō 1.4×, Leviathan 1.7× (≈ Ideal),
//! −26% energy.

use levi_bench::{header, quick_mode, report, Row, Sweep};
use levi_workloads::gen::Graph;
use levi_workloads::hats::{run_hats_on, HatsScale, HatsVariant};

fn main() {
    let mut scale = HatsScale::paper();
    if quick_mode() {
        scale = HatsScale::test();
    }
    header(
        "Fig. 20 — HATS (decoupled BDFS streaming, 1 PageRank iteration)",
        &format!(
            "{} vertices, ~{} edges, communities of {} ({}% intra), {} tiles",
            scale.vertices,
            scale.vertices * scale.avg_degree,
            scale.community,
            scale.intra_pct,
            scale.tiles
        ),
    );
    let graph = Graph::community(
        scale.vertices,
        scale.avg_degree,
        scale.community,
        scale.intra_pct,
        scale.seed,
    );
    let results: Vec<_> = Sweep::new()
        .variants(HatsVariant::all().iter().map(|&v| (v.label(), v)))
        .run(|_, &v| run_hats_on(v, &scale, &graph))
        .into_iter()
        .map(|(label, r)| {
            eprintln!("  ran {:<10} {:>12} cycles", label, r.metrics.cycles);
            r
        })
        .collect();
    for r in &results {
        assert_eq!(
            r.rank_checksum, results[0].rank_checksum,
            "variant {} diverged functionally",
            r.metrics.label
        );
    }
    let paper_speedup = [1.0, 1.2, 1.4, 1.7, 1.71];
    let paper_energy = [1.0, f64::NAN, f64::NAN, 0.74, f64::NAN];
    let rows: Vec<Row> = results
        .iter()
        .enumerate()
        .map(|(i, r)| Row {
            label: &r.metrics.label,
            metrics: &r.metrics,
            paper_speedup: Some(paper_speedup[i]),
            paper_energy: if paper_energy[i].is_nan() {
                None
            } else {
                Some(paper_energy[i])
            },
        })
        .collect();
    report("fig20_hats", &rows);
}
