//! Criterion microbenchmarks for the substrate components: cache-bank
//! operations, NoC sends, DRAM accesses, LevIR interpretation, allocator
//! planning, and a small end-to-end simulation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use levi_isa::{interp::Interpreter, Memory, PagedMem, ProgramBuilder, Reg};
use levi_sim::cache::CacheBank;
use levi_sim::noc::Noc;
use levi_sim::{Machine, MachineConfig, Stats};
use leviathan::alloc::{Allocator, ArraySpec};
use std::sync::Arc;

fn bench_cache(c: &mut Criterion) {
    let cfg = MachineConfig::paper_default();
    c.bench_function("cache/probe_hit", |b| {
        let mut bank = CacheBank::new(&cfg.llc);
        bank.insert(0x1234, &[]);
        b.iter(|| black_box(bank.probe(black_box(0x1234)).is_some()))
    });
    c.bench_function("cache/insert_evict", |b| {
        let mut bank = CacheBank::new(&cfg.l1);
        let mut line = 0u64;
        b.iter(|| {
            line += 1;
            black_box(bank.insert(black_box(line), &[]).1.is_some())
        })
    });
}

fn bench_noc(c: &mut Criterion) {
    let cfg = MachineConfig::paper_default();
    let (cols, rows) = cfg.mesh_dims();
    c.bench_function("noc/send_corner_to_corner", |b| {
        let mut noc = Noc::new(cols, rows, cfg.noc);
        let mut stats = Stats::new();
        let mut t = 0u64;
        b.iter(|| {
            t += 10;
            black_box(noc.send(0, 15, 72, t, &mut stats))
        })
    });
}

fn bench_interp(c: &mut Criterion) {
    // Sum a 64-element array (functional interpreter throughput).
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("sum");
    let (base, n, acc, i, v) = (Reg(0), Reg(1), Reg(2), Reg(3), Reg(4));
    let top = f.label();
    let out = f.label();
    f.imm(acc, 0).imm(i, 0);
    f.bind(top);
    f.bge_u(i, n, out);
    f.ld8(v, base, 0);
    f.add(acc, acc, v);
    f.addi(base, base, 8);
    f.addi(i, i, 1);
    f.jmp(top);
    f.bind(out);
    f.mov(Reg(0), acc).ret();
    let sum = f.finish();
    let prog = pb.finish().unwrap();
    let mut mem = PagedMem::new();
    for k in 0..64u64 {
        mem.write_u64(0x1000 + 8 * k, k);
    }
    c.bench_function("isa/interp_sum64", |b| {
        b.iter(|| {
            let mut interp = Interpreter::new(&prog);
            black_box(interp.run(sum, &[0x1000, 64], &mut mem).unwrap())
        })
    });
}

fn bench_alloc(c: &mut Criterion) {
    c.bench_function("alloc/plan_array", |b| {
        b.iter(|| {
            let mut a = Allocator::new();
            black_box(a.plan_array(&ArraySpec::new("n", black_box(24), 1024)))
        })
    });
}

fn bench_machine(c: &mut Criterion) {
    // End-to-end: one thread scanning 256 lines through the hierarchy.
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("scan");
    let (p, i, n, v) = (Reg(1), Reg(2), Reg(3), Reg(4));
    f.imm(p, 0x10000).imm(i, 0).imm(n, 256);
    let top = f.label();
    let out = f.label();
    f.bind(top);
    f.bge_u(i, n, out);
    f.ld8(v, p, 0);
    f.addi(p, p, 64);
    f.addi(i, i, 1);
    f.jmp(top);
    f.bind(out);
    f.halt();
    let func = f.finish();
    let prog = Arc::new(pb.finish().unwrap());
    c.bench_function("machine/scan_256_lines", |b| {
        b.iter(|| {
            let mut cfg = MachineConfig::with_tiles(4);
            cfg.prefetcher = false;
            let mut m = Machine::new(cfg);
            m.spawn_thread(0, prog.clone(), func, &[]);
            black_box(m.run().unwrap().cycles)
        })
    });
}

criterion_group!(
    benches,
    bench_cache,
    bench_noc,
    bench_interp,
    bench_alloc,
    bench_machine
);
criterion_main!(benches);
