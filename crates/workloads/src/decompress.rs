//! Near-cache data transformation: decompression (paper Sec. VIII-A,
//! Figs. 15 and 16).
//!
//! Pixels are stored lossily compressed as a per-8-pixel base plus a
//! per-pixel (mantissa, exponent) delta for each of three channels
//! (base-delta-immediate style \[57\]). The application computes an average
//! over 16 K pixels under a Zipfian access pattern. A decompressed `Pixel`
//! is 6 B (3 × u16) — it does **not** divide a 64 B line, which is exactly
//! the case prior NDCs cannot handle without manual padding.
//!
//! Variants:
//! * **Baseline** — the core decompresses on every access (~20 extra
//!   instructions per access), with no reuse of decompressed data.
//! * **Offload (OL)** — every access `invoke`s a decompression task on the
//!   local engine and waits on a future. The paper shows this is *worse*
//!   than baseline (2.8×): decompressing at the engine forfeits L1
//!   locality without reducing work.
//! * **Leviathan** — a data-triggered Morph at the L2: the `Pixel`
//!   constructor (Fig. 15) decompresses objects as their lines are
//!   inserted, so the core reuses decompressed pixels from L1/L2.
//! * **No padding** — prior work (tākō) without layout support:
//!   constructors cannot initialize partial objects, so the configuration
//!   is *unsupported*; [`run_decompress`] returns `None` for it.
//! * **Ideal** — Leviathan with idealized engines.

use std::sync::Arc;

use levi_isa::{ActionId, Location, MemWidth, Program, ProgramBuilder, Reg};
use levi_sim::MorphLevel;
use leviathan::{MorphSpec, System, SystemConfig};

use crate::gen::Zipf;
use crate::harness::{RunEnv, RunOutcome, RunStatus, ScaleKind, Workload};
use crate::metrics::RunMetrics;

/// Decompression variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecompressVariant {
    /// Software decompression on the core per access.
    Baseline,
    /// Offload each access to the local engine (the paper's "OL").
    Offload,
    /// Data-triggered decompression through a Morph (Leviathan).
    Leviathan,
    /// Prior work without padding support — unsupported (6 B ∤ 64 B).
    NoPadding,
    /// Leviathan with idealized engines.
    Ideal,
}

impl DecompressVariant {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            DecompressVariant::Baseline => "Baseline",
            DecompressVariant::Offload => "Offload (OL)",
            DecompressVariant::Leviathan => "Leviathan",
            DecompressVariant::NoPadding => "No padding (tako)",
            DecompressVariant::Ideal => "Ideal",
        }
    }

    /// All variants in presentation order.
    pub fn all() -> [DecompressVariant; 5] {
        [
            DecompressVariant::Baseline,
            DecompressVariant::Offload,
            DecompressVariant::NoPadding,
            DecompressVariant::Leviathan,
            DecompressVariant::Ideal,
        ]
    }
}

/// Scale knobs.
#[derive(Clone, Debug)]
pub struct DecompressScale {
    /// Number of pixels.
    pub pixels: u64,
    /// Total accesses across all threads.
    pub accesses: u64,
    /// Tiles (= threads).
    pub tiles: u32,
    /// Zipf parameter.
    pub theta: f64,
    /// RNG seed.
    pub seed: u64,
}

impl DecompressScale {
    /// The paper's scale: 16 K pixels, 32 K Zipf accesses.
    pub fn paper() -> Self {
        DecompressScale {
            pixels: 16 * 1024,
            accesses: 32 * 1024,
            tiles: 16,
            theta: 0.99,
            seed: 0xDC,
        }
    }

    /// Tiny scale for unit tests.
    pub fn test() -> Self {
        DecompressScale {
            pixels: 2048,
            accesses: 4096,
            tiles: 4,
            theta: 0.99,
            seed: 0xDC,
        }
    }
}

/// Result of a decompression run.
#[derive(Clone, Debug)]
pub struct DecompressResult {
    /// Measured metrics.
    pub metrics: RunMetrics,
    /// Sum over all accessed (decompressed) channel values, for
    /// validation.
    pub access_sum: u64,
}

/// The compressed representation of one channel value.
#[inline]
fn decompress_value(base: u16, delta: u8) -> u16 {
    let mantissa = (delta & 0x0F) as u16;
    let exponent = (delta >> 4) as u16;
    base.wrapping_add(mantissa.wrapping_shl(exponent as u32))
}

/// View layout offsets (bases\[3\], deltas\[3\], phantom base).
const VIEW_BASES: [i32; 3] = [0, 8, 16];
const VIEW_DELTAS: [i32; 3] = [24, 32, 40];
const VIEW_PHANTOM: i32 = 48;

struct Programs {
    prog: Arc<Program>,
    baseline: levi_isa::FuncId,
    consumer: levi_isa::FuncId,
    ctor: levi_isa::FuncId,
    ol_task: levi_isa::FuncId,
    ol_driver: levi_isa::FuncId,
}

/// Emits the three-channel decompression of pixel `idx` with results
/// written via `sink(f, channel, value_reg)`.
fn emit_decompress(
    f: &mut levi_isa::FunctionBuilder<'_>,
    view: Reg,
    idx: Reg,
    scratch: [Reg; 6],
    mut sink: impl FnMut(&mut levi_isa::FunctionBuilder<'_>, usize, Reg),
) {
    let [ptr, base, delta, m, e, val] = scratch;
    for c in 0..3 {
        // base = bases[c][idx >> 3]
        f.ld8(ptr, view, VIEW_BASES[c]);
        f.shri(base, idx, 3);
        f.muli(base, base, 2);
        f.add(ptr, ptr, base);
        f.ld2(base, ptr, 0);
        // delta = deltas[c][idx]
        f.ld8(ptr, view, VIEW_DELTAS[c]);
        f.add(ptr, ptr, idx);
        f.ld1(delta, ptr, 0);
        // val = base + ((delta & 15) << (delta >> 4))
        f.andi(m, delta, 15);
        f.shri(e, delta, 4);
        f.shl(m, m, e);
        f.add(val, base, m);
        f.alui(levi_isa::AluOp::And, val, val, 0xFFFF);
        sink(f, c, val);
    }
}

fn build_programs() -> Programs {
    let mut pb = ProgramBuilder::new();

    // Pixel constructor (Fig. 15): r0 = pixel object, r1 = view.
    let ctor = {
        let mut f = pb.function("pixel_ctor");
        let (obj, view) = (Reg(0), Reg(1));
        let (pbase, idx) = (Reg(2), Reg(3));
        let scratch = [Reg(4), Reg(5), Reg(6), Reg(7), Reg(8), Reg(9)];
        f.ld8(pbase, view, VIEW_PHANTOM);
        f.sub(idx, obj, pbase);
        f.shri(idx, idx, 3); // 8B padded pixels
        emit_decompress(&mut f, view, idx, scratch, |f, c, val| {
            f.st2(Reg(0), (c * 2) as i32, val);
        });
        f.halt();
        f.finish()
    };

    // Offloaded decompression task: r0 = actor (view), r1 = idx, r2 = fut.
    let ol_task = {
        let mut f = pb.function("ol_decompress");
        let (view, idx, fut) = (Reg(0), Reg(1), Reg(2));
        let acc = Reg(10);
        let scratch = [Reg(4), Reg(5), Reg(6), Reg(7), Reg(8), Reg(9)];
        f.imm(acc, 0);
        emit_decompress(&mut f, view, idx, scratch, |f, _c, val| {
            f.add(acc, acc, val);
        });
        f.future_send(fut, acc);
        f.halt();
        f.finish()
    };

    // Baseline: r0 = idx array ptr, r1 = count, r2 = view, r3 = result.
    let baseline = {
        let mut f = pb.function("baseline_avg");
        let (ip, n, view, result) = (Reg(0), Reg(1), Reg(2), Reg(3));
        let (i, idx, acc) = (Reg(11), Reg(12), Reg(13));
        let scratch = [Reg(4), Reg(5), Reg(6), Reg(7), Reg(8), Reg(9)];
        f.imm(i, 0).imm(acc, 0);
        let top = f.label();
        let out = f.label();
        f.bind(top);
        f.bge_u(i, n, out);
        f.ld4(idx, ip, 0);
        f.addi(ip, ip, 4);
        emit_decompress(&mut f, view, idx, scratch, |f, _c, val| {
            f.add(acc, acc, val);
        });
        f.addi(i, i, 1);
        f.jmp(top);
        f.bind(out);
        f.st8(result, 0, acc);
        f.halt();
        f.finish()
    };

    // Leviathan consumer: reads decompressed pixels from the phantom range.
    // r0 = idx array ptr, r1 = count, r2 = view, r3 = result.
    let consumer = {
        let mut f = pb.function("morph_avg");
        let (ip, n, view, result) = (Reg(0), Reg(1), Reg(2), Reg(3));
        let (i, idx, acc, pbase, paddr, c0, c1, c2) = (
            Reg(11),
            Reg(12),
            Reg(13),
            Reg(14),
            Reg(15),
            Reg(16),
            Reg(17),
            Reg(18),
        );
        f.imm(i, 0).imm(acc, 0);
        f.ld8(pbase, view, VIEW_PHANTOM);
        let top = f.label();
        let out = f.label();
        f.bind(top);
        f.bge_u(i, n, out);
        f.ld4(idx, ip, 0);
        f.addi(ip, ip, 4);
        f.muli(paddr, idx, 8);
        f.add(paddr, paddr, pbase);
        f.ld2(c0, paddr, 0);
        f.ld2(c1, paddr, 2);
        f.ld2(c2, paddr, 4);
        f.add(acc, acc, c0);
        f.add(acc, acc, c1);
        f.add(acc, acc, c2);
        f.addi(i, i, 1);
        f.jmp(top);
        f.bind(out);
        f.st8(result, 0, acc);
        f.halt();
        f.finish()
    };

    // OL driver: invokes the decompression task per access and waits.
    // r0 = idx array ptr, r1 = count, r2 = view, r3 = result, r4 = fut.
    let ol_driver = {
        let mut f = pb.function("ol_avg");
        let (ip, n, view, result, fut) = (Reg(0), Reg(1), Reg(2), Reg(3), Reg(4));
        let (i, idx, acc, v, zero) = (Reg(11), Reg(12), Reg(13), Reg(14), Reg(15));
        f.imm(i, 0).imm(acc, 0).imm(zero, 0);
        let top = f.label();
        let out = f.label();
        f.bind(top);
        f.bge_u(i, n, out);
        f.ld4(idx, ip, 0);
        f.addi(ip, ip, 4);
        // Reset the future, then offload to the local engine.
        f.st8(fut, 0, zero);
        f.st8(fut, 8, zero);
        f.invoke_future(view, ActionId(1), &[idx, fut], fut, Location::Local);
        f.future_wait(v, fut);
        f.add(acc, acc, v);
        f.addi(i, i, 1);
        f.jmp(top);
        f.bind(out);
        f.st8(result, 0, acc);
        f.halt();
        f.finish()
    };

    Programs {
        prog: Arc::new(pb.finish().expect("decompress programs validate")),
        baseline,
        consumer,
        ctor,
        ol_task,
        ol_driver,
    }
}

/// The deterministic compressed content for one scale, generated
/// host-side so the timed run and the golden model share one source.
struct CompressedData {
    /// Per-channel group bases (one per 8 pixels).
    bases: [Vec<u16>; 3],
    /// Per-channel per-pixel deltas.
    deltas: [Vec<u8>; 3],
    /// The decompressed pixels (the golden reference).
    pixels: Vec<[u16; 3]>,
}

fn gen_compressed(scale: &DecompressScale) -> CompressedData {
    let n = scale.pixels;
    let mut x = scale.seed | 1;
    let mut step = || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        x
    };
    let mut bases: [Vec<u16>; 3] = Default::default();
    let mut deltas: [Vec<u8>; 3] = Default::default();
    let mut pixels = vec![[0u16; 3]; n as usize];
    for c in 0..3 {
        for _ in 0..n.div_ceil(8) {
            bases[c].push((step() >> 40) as u16 & 0x3FFF);
        }
        for i in 0..n {
            let d = (step() >> 33) as u8;
            deltas[c].push(d);
            pixels[i as usize][c] = decompress_value(bases[c][(i / 8) as usize], d);
        }
    }
    CompressedData {
        bases,
        deltas,
        pixels,
    }
}

/// The seeded Zipfian access stream.
fn gen_indices(scale: &DecompressScale) -> Vec<u32> {
    let mut zipf = Zipf::new(scale.pixels, scale.theta, scale.seed);
    (0..scale.accesses).map(|_| zipf.sample() as u32).collect()
}

/// Host-side golden model: the sum of decompressed channel values over
/// the covered prefix of the access stream (threads cover
/// `accesses / tiles * tiles` accesses).
pub fn golden_access_sum(scale: &DecompressScale) -> u64 {
    let data = gen_compressed(scale);
    let indices = gen_indices(scale);
    let covered = (scale.accesses / scale.tiles as u64) * scale.tiles as u64;
    covered_sum(&data, &indices, covered)
}

fn covered_sum(data: &CompressedData, indices: &[u32], covered: u64) -> u64 {
    indices[..covered as usize]
        .iter()
        .map(|&idx| {
            let p = data.pixels[idx as usize];
            p[0] as u64 + p[1] as u64 + p[2] as u64
        })
        .sum()
}

/// Runs one variant. Returns `None` for unsupported configurations
/// (no-padding prior work cannot construct 6 B objects).
pub fn run_decompress(
    variant: DecompressVariant,
    scale: &DecompressScale,
) -> Option<DecompressResult> {
    run_decompress_with(variant, scale, |_| {})
}

/// Runs one variant with arbitrary configuration customization (the
/// unified harness injects fault plans and watchdogs through this hook).
pub fn run_decompress_with(
    variant: DecompressVariant,
    scale: &DecompressScale,
    customize: impl FnOnce(&mut SystemConfig),
) -> Option<DecompressResult> {
    if variant == DecompressVariant::NoPadding {
        // 6 B does not divide 64 B: lines would hold partial objects and
        // constructors cannot run (paper: "data-triggered actions do not
        // work without padding").
        return None;
    }
    let mut cfg = SystemConfig::with_tiles(scale.tiles);
    customize(&mut cfg);
    if variant == DecompressVariant::Ideal {
        cfg = cfg.idealized();
    }
    let mut sys = System::try_new(cfg).expect("decompress system config is valid");
    let n = scale.pixels;

    // ---- compressed data ----
    let data = gen_compressed(scale);
    let mut bases = [0u64; 3];
    let mut deltas = [0u64; 3];
    for c in 0..3 {
        bases[c] = sys.alloc_raw(2 * n.div_ceil(8), 64);
        deltas[c] = sys.alloc_raw(n, 64);
        for (g, &b) in data.bases[c].iter().enumerate() {
            sys.write(bases[c] + 2 * g as u64, b as u64, MemWidth::B2);
        }
        for (i, &d) in data.deltas[c].iter().enumerate() {
            sys.write(deltas[c] + i as u64, d as u64, MemWidth::B1);
        }
    }

    // ---- access pattern (shared index array) ----
    let indices = gen_indices(scale);
    let idx_arr = sys.alloc_raw(4 * scale.accesses, 64);
    for (i, &idx) in indices.iter().enumerate() {
        sys.write(idx_arr + 4 * i as u64, idx as u64, MemWidth::B4);
    }

    let progs = build_programs();
    let ctor_action = sys.register_action(&progs.prog, progs.ctor);
    let ol_action = sys.register_action(&progs.prog, progs.ol_task);
    assert_eq!(ctor_action, ActionId(0));
    assert_eq!(ol_action, ActionId(1));

    // ---- view & phantom range ----
    let use_morph = matches!(
        variant,
        DecompressVariant::Leviathan | DecompressVariant::Ideal
    );
    // For morph variants the view must be the Morph's own view object —
    // that is the address the engine passes to constructors in r1.
    let view = if use_morph {
        let morph = sys.register_morph(
            &MorphSpec::new("pixels", 6, n, MorphLevel::L2)
                .with_ctor(ctor_action)
                .with_view_bytes(64),
        );
        assert_eq!(morph.actors.stride, 8, "6 B pixels pad to 8 B");
        sys.write_u64(morph.view + VIEW_PHANTOM as u64, morph.actors.base);
        morph.view
    } else {
        sys.alloc_raw(64, 64)
    };
    for c in 0..3 {
        sys.write_u64(view + VIEW_BASES[c] as u64, bases[c]);
        sys.write_u64(view + VIEW_DELTAS[c] as u64, deltas[c]);
    }

    // ---- run ----
    let results = sys.alloc_raw(8 * scale.tiles as u64, 64);
    let per = scale.accesses / scale.tiles as u64;
    for t in 0..scale.tiles {
        let ip = idx_arr + 4 * per * t as u64;
        let res = results + 8 * t as u64;
        match variant {
            DecompressVariant::Baseline => {
                sys.spawn_thread(t, &progs.prog, progs.baseline, &[ip, per, view, res])
                    .unwrap();
            }
            DecompressVariant::Offload => {
                let fut = sys.alloc_future();
                sys.spawn_thread(
                    t,
                    &progs.prog,
                    progs.ol_driver,
                    &[ip, per, view, res, fut.addr],
                )
                .unwrap();
            }
            DecompressVariant::Leviathan | DecompressVariant::Ideal => {
                sys.spawn_thread(t, &progs.prog, progs.consumer, &[ip, per, view, res])
                    .unwrap();
            }
            DecompressVariant::NoPadding => unreachable!(),
        }
    }
    sys.run().expect("decompress run deadlocked");

    let mut access_sum = 0u64;
    for t in 0..scale.tiles {
        access_sum += sys.read_u64(results + 8 * t as u64);
    }
    // Threads cover per*tiles accesses; recompute golden over that prefix.
    let covered = per * scale.tiles as u64;
    let golden_covered = covered_sum(&data, &indices, covered);
    assert_eq!(
        access_sum,
        golden_covered,
        "{} produced wrong pixel sums",
        variant.label()
    );

    Some(DecompressResult {
        metrics: RunMetrics::capture(variant.label(), &sys),
        access_sum,
    })
}

/// Registry entry for the decompression study (see [`crate::harness`]).
pub struct DecompressWorkload;

impl Workload for DecompressWorkload {
    type Variant = DecompressVariant;
    type Scale = DecompressScale;
    type Input = ();

    fn name(&self) -> &'static str {
        "decompress"
    }

    fn variants(&self) -> Vec<(&'static str, DecompressVariant)> {
        DecompressVariant::all()
            .iter()
            .map(|&v| (v.label(), v))
            .collect()
    }

    fn scale(&self, kind: ScaleKind) -> DecompressScale {
        match kind {
            ScaleKind::Paper => DecompressScale::paper(),
            ScaleKind::Test | ScaleKind::Quick => DecompressScale::test(),
        }
    }

    fn build_input(&self, _scale: &DecompressScale) {}

    fn describe(&self, scale: &DecompressScale) -> String {
        format!(
            "{} pixels (6 B), {} Zipf({}) accesses, {} tiles",
            scale.pixels, scale.accesses, scale.theta, scale.tiles
        )
    }

    fn run(
        &self,
        variant: DecompressVariant,
        scale: &DecompressScale,
        _input: &(),
        env: &RunEnv,
    ) -> RunStatus {
        match run_decompress_with(variant, scale, |cfg| env.customize(cfg)) {
            Some(r) => RunStatus::Done(Box::new(RunOutcome::new(r.metrics, r.access_sum))),
            None => RunStatus::Unsupported(
                "6 B objects straddle cache lines without padding (as in the paper)",
            ),
        }
    }

    fn golden(&self, _variant: DecompressVariant, scale: &DecompressScale, _input: &()) -> u64 {
        golden_access_sum(scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decompress_value_formula() {
        assert_eq!(decompress_value(100, 0x00), 100);
        assert_eq!(decompress_value(100, 0x05), 105);
        assert_eq!(decompress_value(100, 0x15), 110, "mantissa 5 << exp 1");
        assert_eq!(decompress_value(0xFFFF, 0x01), 0, "wraps at 16 bits");
    }

    #[test]
    fn no_padding_is_unsupported() {
        assert!(run_decompress(DecompressVariant::NoPadding, &DecompressScale::test()).is_none());
    }

    #[test]
    fn variants_agree_and_leviathan_wins() {
        let scale = DecompressScale::test();
        let base = run_decompress(DecompressVariant::Baseline, &scale).unwrap();
        let lev = run_decompress(DecompressVariant::Leviathan, &scale).unwrap();
        assert_eq!(base.access_sum, lev.access_sum);
        let speedup = lev.metrics.speedup_vs(&base.metrics);
        assert!(
            speedup > 1.3,
            "Leviathan should clearly beat software decompression: {speedup:.2}x"
        );
        assert!(lev.metrics.stats.ctor_actions > 0);
        // Reuse: far fewer line constructions than accesses (Zipf
        // locality). Constructors are counted per object, 8 per line.
        let line_fills = lev.metrics.stats.ctor_actions / 8;
        assert!(
            line_fills < scale.accesses / 2,
            "decompressed pixels must be reused from cache: {line_fills} line fills"
        );
    }

    #[test]
    fn offload_is_worse_than_baseline() {
        let scale = DecompressScale::test();
        let base = run_decompress(DecompressVariant::Baseline, &scale).unwrap();
        let ol = run_decompress(DecompressVariant::Offload, &scale).unwrap();
        assert_eq!(base.access_sum, ol.access_sum);
        let speedup = ol.metrics.speedup_vs(&base.metrics);
        assert!(
            speedup < 1.0,
            "offloading per-access decompression must lose (paper: 2.8x worse): {speedup:.2}x"
        );
    }

    #[test]
    fn ideal_at_least_as_fast_as_real() {
        let scale = DecompressScale::test();
        let lev = run_decompress(DecompressVariant::Leviathan, &scale).unwrap();
        let ideal = run_decompress(DecompressVariant::Ideal, &scale).unwrap();
        let ratio = lev.metrics.cycles as f64 / ideal.metrics.cycles as f64;
        assert!(
            ratio >= 0.95,
            "ideal engines cannot be slower: ratio {ratio:.2}"
        );
    }
}
