//! The task-offload (invoke) scheduler — paper Sec. VI-B1.
//!
//! Resolves where an `invoke` runs (LOCAL → the issuing tile's L2 engine;
//! REMOTE → the actor's home-bank LLC engine; DYNAMIC → local if the
//! actor's line is already cached privately, else the home bank, steered
//! to a remote owner's L2 engine for EXCLUSIVE actors), applies the 1/32
//! migrate-local policy that lets hot data settle upward, and issues the
//! invoke packet with NACK/backpressure semantics: a full target engine
//! parks the sender on [`WaitCond::EngineCtx`], a full invoke buffer
//! throttles the core until an ACK returns, and a fault-refused engine
//! retries with bounded exponential backoff before falling back to a
//! software handler on the issuing core.
//!
//! With [`MachineConfig::trace_sched`](crate::MachineConfig::trace_sched)
//! enabled, every decision is recorded in the `sched` trace category:
//! `sched.place` (where an invoke was sent and why), `sched.nack`
//! (target engine out of contexts), and `sched.migrate_local` (the 1/32
//! policy overrode a remote placement).

use levi_isa::{Location, Memory, NdcRequest, Poll};

use crate::engine::{EngineId, EngineLevel};
use crate::ndc::WaitCond;
use crate::ndc_host::{SpawnReq, TimedHost, INVOKE_ACK};
use crate::span::SpanId;
use crate::trace::{TraceCategory, TraceEvent, Track};

/// Compact encoding of a placement decision for `sched.place` trace
/// events: how the target engine was chosen.
enum Placement {
    /// LOCAL request → issuing tile's L2 engine.
    Local = 0,
    /// REMOTE request → actor's home-bank LLC engine.
    Remote = 1,
    /// DYNAMIC probe hit the issuing tile's private caches → local.
    DynamicCached = 2,
    /// DYNAMIC probe missed → actor's home bank.
    DynamicHome = 3,
    /// DYNAMIC + EXCLUSIVE with a remote owner → the owner's L2 engine.
    DynamicOwner = 4,
    /// The 1/32 migrate-local policy overrode a remote placement.
    MigrateLocal = 5,
}

impl TimedHost<'_> {
    /// Records one invoke-lifecycle stage event in the `span` trace
    /// category, carrying the span id (plus up to two extra arguments)
    /// so the Chrome export can flow-link the stages. Only reached when
    /// spans are enabled, so span-disabled traced runs stay
    /// byte-identical.
    fn span_event(
        &mut self,
        id: SpanId,
        name: &'static str,
        at: u64,
        track: Track,
        extra: &[(&'static str, u64)],
    ) {
        debug_assert!(extra.len() <= 2, "span id plus at most two extras");
        let mut args = [("span", id.0 as u64), ("", 0), ("", 0)];
        let n = 1 + extra.len();
        args[1..n].copy_from_slice(extra);
        self.hw
            .stats
            .trace
            .record(|| TraceEvent::instant(at, TraceCategory::Span, name, track, &args[..n]));
    }

    /// Picks the engine an invoke should run on (Sec. VI-B1).
    fn schedule_invoke(&mut self, req: &NdcRequest) -> EngineId {
        let line = req.actor >> crate::config::LINE_SHIFT;
        let local_l2 = EngineId {
            tile: self.tile,
            level: EngineLevel::L2,
        };
        let (target, mut placement) = match req.loc {
            Location::Local => (local_l2, Placement::Local),
            Location::Remote => (
                EngineId {
                    tile: self.hw.bank_of(req.actor),
                    level: EngineLevel::Llc,
                },
                Placement::Remote,
            ),
            Location::Dynamic => {
                if self.is_core
                    && (self.hw.l1[self.tile as usize].contains(line)
                        || self.hw.l2[self.tile as usize].contains(line))
                {
                    (local_l2, Placement::DynamicCached)
                } else {
                    let bank = self.hw.bank_of(req.actor);
                    let mut t = EngineId {
                        tile: bank,
                        level: EngineLevel::Llc,
                    };
                    let mut p = Placement::DynamicHome;
                    if req.exclusive {
                        if let Some(l) = self.hw.llc[bank as usize].peek(line) {
                            if let Some(o) = l.owner {
                                if o as u32 != self.tile {
                                    t = EngineId {
                                        tile: o as u32,
                                        level: EngineLevel::L2,
                                    };
                                    p = Placement::DynamicOwner;
                                }
                            }
                        }
                    }
                    (t, p)
                }
            }
        };
        // 1/32 migrate-local policy: occasionally execute a would-be
        // remote DYNAMIC task locally to let hot data settle upward.
        let mut target = target;
        if req.loc == Location::Dynamic && target.tile != self.tile {
            *self.invoke_count += 1;
            if (*self.invoke_count).is_multiple_of(32) {
                self.hw.stats.invoke_migrations += 1;
                if self.hw.cfg.trace_sched {
                    let (now, track) = (self.now, self.track());
                    let from = target.tile as u64;
                    self.hw.stats.trace.record(|| {
                        TraceEvent::instant(
                            now,
                            TraceCategory::Sched,
                            "sched.migrate_local",
                            track,
                            &[("from", from), ("actor_addr", req.actor)],
                        )
                    });
                }
                target = local_l2;
                placement = Placement::MigrateLocal;
            }
        }
        if self.hw.cfg.trace_sched {
            let (now, track) = (self.now, self.track());
            let t_tile = target.tile as u64;
            let p = placement as u64;
            self.hw.stats.trace.record(|| {
                TraceEvent::instant(
                    now,
                    TraceCategory::Sched,
                    "sched.place",
                    track,
                    &[("target", t_tile), ("policy", p), ("actor_addr", req.actor)],
                )
            });
        }
        target
    }

    /// The full invoke issue path: backpressure, fault backoff/fallback,
    /// target scheduling, NACK, packet + ACK timing.
    pub(crate) fn do_invoke(&mut self, _mem: &mut dyn Memory, req: NdcRequest) -> Poll<()> {
        crate::perf::prof_scope!(crate::perf::Phase::Invoke);
        // Open a lifecycle span on the *first* attempt; re-executions
        // after backpressure sleeps and NACK parks reuse it, so the
        // offload stage covers the whole wait.
        if self.hw.stats.spans.enabled() && self.pending_span.is_none() {
            *self.pending_span = self.hw.stats.spans.begin(self.tile, self.now);
        }
        // Invoke-buffer backpressure (skipped for future-carrying invokes).
        if self.is_core && req.future.is_none() {
            while let Some(&front) = self.invoke_acks.front() {
                if front <= self.now {
                    self.invoke_acks.pop_front();
                } else {
                    break;
                }
            }
            let cfg_limit = self.hw.cfg.core.invoke_buffer;
            let limit = self.hw.faults.invoke_buffer_limit(cfg_limit, self.now);
            if self.invoke_acks.len() >= limit as usize {
                let earliest = *self.invoke_acks.front().expect("nonempty");
                if limit < cfg_limit {
                    // This stall only exists because a squeeze shrank the
                    // buffer below its configured capacity.
                    let wait = earliest.saturating_sub(self.now);
                    self.hw.stats.fault_degraded_cycles += wait;
                    let (now, track) = (self.now, self.track());
                    self.hw.stats.trace.record(|| {
                        TraceEvent::instant(
                            now,
                            TraceCategory::Fault,
                            "fault.invoke_squeeze",
                            track,
                            &[("limit", limit as u64), ("wait", wait)],
                        )
                    });
                }
                self.sleep_until = Some(earliest);
                return Poll::Pending;
            }
        }

        // Resolve the action first: an unregistered id is a typed
        // mid-run fault, not a panic.
        let aref = match self.hw.ndc.actions.get(req.action) {
            Ok(a) => a.clone(),
            Err(e) => {
                self.hw.fatal = Some(e);
                self.op_done = self.now + 1;
                return Poll::Ready(());
            }
        };

        let target = self.schedule_invoke(&req);

        // Fault window: the engine refuses new tasks. Retry with bounded
        // exponential backoff; past the budget, fall back to running the
        // action on the issuing core (software-fallback virtualization).
        if !self.hw.faults.is_empty() && self.hw.faults.engine_refusing(target, self.now) {
            self.hw.stats.invoke_nacks += 1;
            *self.invoke_retries += 1;
            let retries = *self.invoke_retries;
            let (now, track) = (self.now, self.track());
            if retries <= self.hw.faults.retry_budget {
                let delay = self.hw.faults.backoff_delay(retries);
                self.hw.stats.fault_nack_retries += 1;
                self.hw.stats.fault_degraded_cycles += delay;
                self.hw.stats.fault_backoff.record(delay);
                self.hw.stats.trace.record(|| {
                    TraceEvent::instant(
                        now,
                        TraceCategory::Fault,
                        "fault.invoke_backoff",
                        track,
                        &[
                            ("target", target.tile as u64),
                            ("retry", retries as u64),
                            ("delay", delay),
                        ],
                    )
                });
                if let Some(id) = *self.pending_span {
                    self.hw.stats.spans.note_retry(id);
                    self.span_event(
                        id,
                        "span.retried",
                        now,
                        track,
                        &[("retry", retries as u64), ("delay", delay)],
                    );
                }
                self.sleep_until = Some(now + delay);
                return Poll::Pending;
            }
            *self.invoke_retries = 0;
            self.hw.stats.fault_fallbacks += 1;
            self.hw.stats.trace.record(|| {
                TraceEvent::instant(
                    now,
                    TraceCategory::Fault,
                    "fault.core_fallback",
                    track,
                    &[("target", target.tile as u64), ("actor_addr", req.actor)],
                )
            });
            let span = self.pending_span.take();
            if let Some(id) = span {
                self.hw.stats.spans.note_issue(id, now, target, true);
                self.span_event(
                    id,
                    "span.issued",
                    now,
                    track,
                    &[("target", target.tile as u64), ("fallback", 1)],
                );
            }
            let mut args = Vec::with_capacity(1 + req.args.len());
            args.push(req.actor);
            args.extend_from_slice(&req.args);
            self.spawns.push(SpawnReq {
                engine: target,
                func: aref.func,
                prog: aref.prog,
                args,
                start: now + 1,
                fallback_core: Some(self.tile),
                span,
            });
            self.op_done = now + 1;
            return Poll::Ready(());
        }
        if *self.invoke_retries != 0 {
            *self.invoke_retries = 0;
        }

        // Engine-slot quota (crate::xlat): a tenant invoking an engine
        // outside its tile block NACKs once the engine holds `quota`
        // contexts, reserving the rest for the owner. Parks on the same
        // condition as a context NACK — a release re-evaluates the quota.
        if let Some(tm) = &self.hw.tenants {
            let in_use = self.hw.engines[target.index()].ctxs_in_use();
            if tm.quota_blocks(self.tile, target, in_use) {
                self.hw.stats.invoke_nacks += 1;
                self.hw.stats.tenant_quota_nacks += 1;
                let (now, track) = (self.now, self.track());
                self.hw.stats.trace.record(|| {
                    TraceEvent::instant(
                        now,
                        TraceCategory::Invoke,
                        "invoke.quota_nack",
                        track,
                        &[("target", target.tile as u64)],
                    )
                });
                if let Some(id) = *self.pending_span {
                    self.hw.stats.spans.note_nack(id);
                    self.span_event(
                        id,
                        "span.nacked",
                        now,
                        track,
                        &[("target", target.tile as u64)],
                    );
                }
                self.block = Some(WaitCond::EngineCtx(target));
                return Poll::Pending;
            }
        }

        if !self.hw.engines[target.index()].try_reserve_ctx() {
            self.hw.stats.invoke_nacks += 1;
            let (now, track) = (self.now, self.track());
            self.hw.stats.trace.record(|| {
                TraceEvent::instant(
                    now,
                    TraceCategory::Invoke,
                    "invoke.nack",
                    track,
                    &[("target", target.tile as u64)],
                )
            });
            if self.hw.cfg.trace_sched {
                self.hw.stats.trace.record(|| {
                    TraceEvent::instant(
                        now,
                        TraceCategory::Sched,
                        "sched.nack",
                        track,
                        &[("target", target.tile as u64), ("actor_addr", req.actor)],
                    )
                });
            }
            if let Some(id) = *self.pending_span {
                self.hw.stats.spans.note_nack(id);
                self.span_event(
                    id,
                    "span.nacked",
                    now,
                    track,
                    &[("target", target.tile as u64)],
                );
            }
            self.block = Some(WaitCond::EngineCtx(target));
            return Poll::Pending;
        }
        self.hw.stats.invokes += 1;
        if let Some(tm) = &self.hw.tenants {
            let ten = tm.tenant_of(self.tile) as usize;
            if let Some(c) = self.hw.stats.tenant_invokes.get_mut(ten) {
                *c += 1;
            }
        }
        let (now, track) = (self.now, self.track());
        self.hw.stats.trace.record(|| {
            TraceEvent::instant(
                now,
                TraceCategory::Invoke,
                "invoke.issue",
                track,
                &[("target", target.tile as u64), ("actor_addr", req.actor)],
            )
        });
        let span = self.pending_span.take();
        if let Some(id) = span {
            self.hw.stats.spans.note_issue(id, now, target, false);
            self.span_event(
                id,
                "span.issued",
                now,
                track,
                &[("target", target.tile as u64)],
            );
        }

        // Invoke packet: header + actor + action + args (+ future).
        let bytes = 24 + 8 * req.args.len() as u32 + if req.future.is_some() { 8 } else { 0 };
        let arrival = self.hw.noc.send_tagged(
            self.tile,
            target.tile,
            bytes,
            self.now,
            &mut self.hw.stats,
            span,
        );
        if let Some(id) = span {
            self.hw.stats.spans.note_arrival(id, arrival);
            self.span_event(id, "span.enqueued", arrival, Track::Engine(target), &[]);
        }

        let mut args = Vec::with_capacity(1 + req.args.len());
        args.push(req.actor);
        args.extend_from_slice(&req.args);
        self.spawns.push(SpawnReq {
            engine: target,
            func: aref.func,
            prog: aref.prog,
            args,
            start: arrival,
            fallback_core: None,
            span,
        });
        if self.is_core && req.future.is_none() {
            // ACK returns once the engine accepts the task.
            let ack = self.hw.noc.send_tagged(
                target.tile,
                self.tile,
                INVOKE_ACK,
                arrival,
                &mut self.hw.stats,
                span,
            );
            self.hw
                .stats
                .invoke_rtt
                .record(ack.saturating_sub(self.now));
            if let Some(id) = span {
                self.hw.stats.spans.note_ack(id, ack);
                self.span_event(id, "span.responded", ack, Track::Core(self.tile), &[]);
            }
            self.invoke_acks.push_back(ack);
        }
        self.op_done = self.now + 1;
        Poll::Ready(())
    }
}
