//! Fig. 21 — HATS performance breakdown.
//!
//! Left: DRAM accesses split by PageRank phase (edge vs vertex) — BDFS
//! variants cut edge-phase accesses ~40%. Middle: branch mispredictions
//! per edge — streaming eliminates them. Right: average engine
//! instructions per edge — tākō's per-line restarts cost more than
//! Leviathan's continuously running producer.

use levi_bench::{header, quick_mode, table};
use levi_workloads::gen::Graph;
use levi_workloads::hats::{run_hats_on, HatsScale, HatsVariant};

fn main() {
    let mut scale = HatsScale::paper();
    if quick_mode() {
        scale = HatsScale::test();
    }
    header(
        "Fig. 21 — HATS breakdown (DRAM by phase / mispredicts / engine work)",
        "paper: BDFS cuts edge-phase DRAM ~40%; streams eliminate mispredicts;\ntako needs more engine instructions per edge than Leviathan",
    );
    let graph = Graph::community(
        scale.vertices,
        scale.avg_degree,
        scale.community,
        scale.intra_pct,
        scale.seed,
    );
    let mut rows = Vec::new();
    let mut base_edge_dram = 0u64;
    for v in HatsVariant::all() {
        let r = run_hats_on(v, &scale, &graph);
        eprintln!("  ran {:<10}", v.label());
        let s = &r.metrics.stats;
        if v == HatsVariant::Baseline {
            base_edge_dram = s.dram_by_phase[0];
        }
        rows.push(vec![
            v.label().to_string(),
            s.dram_by_phase[0].to_string(),
            format!(
                "{:+.0}%",
                (s.dram_by_phase[0] as f64 / base_edge_dram as f64 - 1.0) * 100.0
            ),
            s.dram_by_phase[1].to_string(),
            format!("{:.3}", s.mispredicts as f64 / r.edges as f64),
            format!("{:.1}", s.engine_instrs as f64 / r.edges as f64),
            s.stream_stall_cycles.to_string(),
        ]);
    }
    table(
        &[
            "variant",
            "DRAM(edge)",
            "vs base",
            "DRAM(vertex)",
            "mispred/edge",
            "engine instr/edge",
            "stream stalls",
        ],
        &rows,
    );
}
