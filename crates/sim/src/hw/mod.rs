//! The hardware core of the simulator: the cache-hierarchy *walk*.
//!
//! Every memory access — from a core or an engine — is resolved by walking
//! the hierarchy synchronously, reserving contended resources (cache banks,
//! NoC links, DRAM controllers) at future times and updating cache and
//! directory state along the way. The walk is where Leviathan's
//! polymorphism lives: misses in Morph-registered phantom ranges trigger
//! constructor actions on the nearby engine instead of fetching from the
//! next level, and evictions of destructor-tagged lines trigger destructor
//! actions (paper Secs. V-B2, VI-B2).
//!
//! The walk is decomposed into four stages, one per submodule:
//!
//! * [`probe`](self) — the private-cache probes on the core and engine
//!   paths ([`Hw::access_core`], [`Hw::access_engine`]) plus the L2
//!   stride prefetcher,
//! * `directory` — the shared-LLC stage: bank lookup, in-tag directory
//!   coherence actions, and DRAM fetches,
//! * `phantom` — data-triggered fills: Morph constructor execution and
//!   the inline-action interpreter,
//! * `evict` — fills into the private hierarchy, victim handling at every
//!   level (writebacks, destructor dispatch), and range flushes.
//!
//! The submodules are an implementation detail: everything is a method on
//! [`Hw`], and the public paths (`crate::hw::Hw`, [`Walk`],
//! [`AccessKind`], the message-size constants) are unchanged from when
//! this was a single file.

mod directory;
mod evict;
mod phantom;
mod probe;

use levi_isa::Addr;

use crate::cache::CacheBank;
use crate::config::{MachineConfig, LINE_SHIFT};
use crate::dram::{Dram, Translator};
use crate::engine::{EngineId, EngineLevel, EngineState};
use crate::error::SimError;
use crate::fault::FaultState;
use crate::ndc::{MorphLevel, NdcState, WaitCond};
use crate::noc::Noc;
use crate::stats::Stats;
use crate::trace::Tracer;

/// Control message payload bytes (request headers, invalidations, acks).
pub const CTRL_MSG: u32 = 16;
/// Data message payload bytes (a line plus header).
pub const DATA_MSG: u32 = 72;
/// Invalidation message bytes.
pub const INVAL_MSG: u32 = 8;

/// What an access wants from the memory system.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// Read (shared permission suffices).
    Read,
    /// Write (requires ownership; write-allocate).
    Write,
    /// Atomic read-modify-write (requires ownership).
    Rmw,
}

impl AccessKind {
    /// True if the access needs exclusive ownership.
    pub fn wants_ownership(self) -> bool {
        !matches!(self, AccessKind::Read)
    }
}

/// Result of a walk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Walk {
    /// The access completes at this cycle.
    Done {
        /// Completion cycle.
        at: u64,
    },
    /// The access cannot proceed; the context must park on the condition.
    Blocked(WaitCond),
}

/// Per-tile stride prefetcher state (L2, degree-N).
#[derive(Clone, Copy, Debug, Default)]
pub struct StridePf {
    last_line: u64,
    stride: i64,
    confidence: u8,
}

impl StridePf {
    /// Observes a miss line; returns a confirmed stride if confident.
    pub(crate) fn observe(&mut self, line: u64) -> Option<i64> {
        let stride = line as i64 - self.last_line as i64;
        if stride != 0 && stride == self.stride {
            self.confidence = (self.confidence + 1).min(3);
        } else {
            self.stride = stride;
            self.confidence = 0;
        }
        self.last_line = line;
        if self.confidence >= 2 && self.stride.abs() <= 8 {
            Some(self.stride)
        } else {
            None
        }
    }
}

/// All hardware state below the execution contexts.
#[derive(Debug)]
pub struct Hw {
    /// Machine configuration.
    pub cfg: MachineConfig,
    /// Per-tile L1 data caches.
    pub l1: Vec<CacheBank>,
    /// Per-tile private L2 caches.
    pub l2: Vec<CacheBank>,
    /// Per-tile LLC banks (shared, inclusive, with in-tag directory).
    pub llc: Vec<CacheBank>,
    /// Engines, two per tile (see [`EngineId::index`]).
    pub engines: Vec<EngineState>,
    /// The mesh NoC.
    pub noc: Noc,
    /// DRAM subsystem.
    pub dram: Dram,
    /// Cache↔DRAM compaction translator.
    pub translator: Translator,
    /// NDC architectural state.
    pub ndc: NdcState,
    /// Statistics.
    pub stats: Stats,
    /// Injected-fault state (engine refusal windows, invoke squeezes, and
    /// the retry/backoff policy). Empty unless the config carried a
    /// [`crate::fault::FaultPlan`].
    pub faults: FaultState,
    /// Address-translation state (per-tile TLBs); `None` unless the
    /// config enabled [`crate::xlat`].
    pub xlat: Option<crate::xlat::XlatState>,
    /// Derived tenant topology; `None` unless the config enabled
    /// multi-tenant sharing.
    pub tenants: Option<crate::xlat::TenantMap>,
    /// A fatal simulation error raised mid-actor (e.g. an invoke of an
    /// unregistered action); `Machine::run` drains it into
    /// `RunError::Fault`.
    pub(crate) fatal: Option<SimError>,
    /// Per-tile prefetchers.
    prefetchers: Vec<StridePf>,
    /// Lines with in-flight fills (MSHR/line-buffer protection): never
    /// chosen as victims while a walk that fills them is in progress.
    pins: Vec<u64>,
    /// Nesting depth of inline (data-triggered) action execution.
    inline_depth: u32,
    /// Destructor work deferred from within inline actions (the engine's
    /// actor buffer): drained iteratively once the current action ends,
    /// preventing unbounded eviction cascades.
    pending_dtors: Vec<PendingDtor>,
    /// Scratch arena for drained lines in `flush_range` — reused across
    /// calls so flushes don't allocate. Always empty between calls; never
    /// serialized.
    scratch_lines: Vec<crate::cache::Line>,
    /// Scratch arena for the sorted dirty-line set in `flush_range`. Always
    /// empty between calls; never serialized.
    scratch_dirty: Vec<u64>,
}

/// A deferred destructor invocation (see [`Hw::pending_dtors`]).
#[derive(Clone, Copy, Debug)]
struct PendingDtor {
    eid: EngineId,
    line: u64,
    dirty: bool,
    at: u64,
    level: MorphLevel,
    home: u32,
}

impl Hw {
    /// Builds the hardware from a configuration.
    pub fn new(cfg: MachineConfig) -> Self {
        let tiles = cfg.tiles as usize;
        let (cols, rows) = cfg.mesh_dims();
        let mut engines = Vec::with_capacity(tiles * 2);
        for t in 0..cfg.tiles {
            engines.push(EngineState::new(
                EngineId {
                    tile: t,
                    level: EngineLevel::L2,
                },
                &cfg.engine,
            ));
            engines.push(EngineState::new(
                EngineId {
                    tile: t,
                    level: EngineLevel::Llc,
                },
                &cfg.engine,
            ));
        }
        let mut stats = Stats::new();
        stats.trace = Tracer::new(cfg.trace, cfg.trace_capacity);
        stats.spans =
            crate::span::SpanTable::new(cfg.trace_spans, crate::span::DEFAULT_SPAN_CAPACITY);
        stats.timeline = crate::stats::TimeSeries::new(cfg.sample_interval);
        let mut noc = Noc::new(cols, rows, cfg.noc);
        let mut dram = Dram::new(cfg.mem);
        let mut faults = FaultState::default();
        if let Some(plan) = &cfg.fault_plan {
            noc.install_faults(plan.link_faults.clone());
            dram.install_faults(plan.dram_faults.clone());
            stats.faults_injected = plan.total_faults();
            faults = FaultState::from_plan(plan);
        }
        let xlat = cfg.xlat.map(|x| crate::xlat::XlatState::new(x, cfg.tiles));
        let tenants = cfg
            .tenants
            .as_ref()
            .map(|t| crate::xlat::TenantMap::new(t, &cfg));
        if let Some(tm) = &tenants {
            stats.tenant_llc_misses = vec![0; tm.count as usize];
            stats.tenant_invokes = vec![0; tm.count as usize];
            stats.tenant_finish = vec![0; tm.count as usize];
        }
        Hw {
            l1: (0..tiles).map(|_| CacheBank::new(&cfg.l1)).collect(),
            l2: (0..tiles).map(|_| CacheBank::new(&cfg.l2)).collect(),
            llc: (0..tiles).map(|_| CacheBank::new(&cfg.llc)).collect(),
            engines,
            noc,
            dram,
            translator: Translator::new(),
            ndc: NdcState::default(),
            stats,
            faults,
            xlat,
            tenants,
            fatal: None,
            prefetchers: vec![StridePf::default(); tiles],
            pins: Vec::new(),
            inline_depth: 0,
            pending_dtors: Vec::new(),
            scratch_lines: Vec::new(),
            scratch_dirty: Vec::new(),
            cfg,
        }
    }

    /// Takes a time-series sample if one is due at cycle `now`, reading
    /// instantaneous engine-context occupancy and stream buffer depth.
    pub fn maybe_sample(&mut self, now: u64) {
        if !self.stats.timeline.due(now) {
            return;
        }
        let ctxs: u32 = self.engines.iter().map(|e| e.ctxs_in_use()).sum();
        let depth = self.ndc.buffered_entries();
        self.stats.take_sample(now, ctxs, depth);
    }

    /// Pins `line` against eviction for the duration of a walk.
    fn pin(&mut self, line: u64) {
        self.pins.push(line);
    }

    /// Releases the most recent pin.
    fn unpin(&mut self) {
        self.pins.pop().expect("unbalanced unpin");
    }

    /// The LLC bank holding `addr`, honoring Leviathan's bank-mapping
    /// overrides for large objects.
    pub fn bank_of(&self, addr: Addr) -> u32 {
        let line = addr >> LINE_SHIFT;
        let ignore = self.ndc.bank_ignore_bits(addr);
        ((line >> ignore) % self.cfg.tiles as u64) as u32
    }
}

impl Hw {
    /// Serializes the hardware state with private fields: prefetchers,
    /// MSHR pins, inline-action depth, and deferred destructors (see
    /// [`crate::snapshot`]; the public members are serialized there).
    pub(crate) fn snap_write_private(&self, w: &mut levi_isa::codec::Writer) {
        w.u32(self.prefetchers.len() as u32);
        for p in &self.prefetchers {
            w.u64(p.last_line);
            w.i64(p.stride);
            w.u8(p.confidence);
        }
        w.u32(self.pins.len() as u32);
        for l in &self.pins {
            w.u64(*l);
        }
        w.u32(self.inline_depth);
        w.u32(self.pending_dtors.len() as u32);
        for d in &self.pending_dtors {
            crate::snapshot::w_engine_id(w, d.eid);
            w.u64(d.line);
            w.bool(d.dirty);
            w.u64(d.at);
            crate::snapshot::w_morph_level(w, d.level);
            w.u32(d.home);
        }
    }

    /// Restores state written by [`Hw::snap_write_private`].
    pub(crate) fn snap_read_private(
        &mut self,
        r: &mut levi_isa::codec::Reader,
    ) -> Result<(), levi_isa::codec::CodecError> {
        let n = r.count(17)?;
        if n != self.prefetchers.len() {
            return Err(levi_isa::codec::CodecError::Invalid("prefetcher count"));
        }
        for p in &mut self.prefetchers {
            p.last_line = r.u64()?;
            p.stride = r.i64()?;
            p.confidence = r.u8()?;
        }
        let n = r.count(8)?;
        self.pins = Vec::with_capacity(n);
        for _ in 0..n {
            self.pins.push(r.u64()?);
        }
        self.inline_depth = r.u32()?;
        let n = r.count(27)?;
        self.pending_dtors = Vec::with_capacity(n);
        for _ in 0..n {
            self.pending_dtors.push(PendingDtor {
                eid: crate::snapshot::r_engine_id(r)?,
                line: r.u64()?,
                dirty: r.bool()?,
                at: r.u64()?,
                level: crate::snapshot::r_morph_level(r)?,
                home: r.u32()?,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::PrivState;
    use crate::config::LINE_SIZE;
    use levi_isa::{Memory, PagedMem};

    fn hw() -> Hw {
        let mut cfg = MachineConfig::paper_default();
        cfg.prefetcher = false;
        Hw::new(cfg)
    }

    fn done(w: Walk) -> u64 {
        match w {
            Walk::Done { at } => at,
            Walk::Blocked(c) => panic!("unexpectedly blocked: {c:?}"),
        }
    }

    #[test]
    fn first_access_misses_to_dram_then_hits_l1() {
        let mut h = hw();
        let mut mem = PagedMem::new();
        let t1 = done(h.access_core(&mut mem, 0, AccessKind::Read, 0x1000, 0, true));
        assert!(t1 >= h.cfg.mem.latency, "cold miss reaches DRAM: {t1}");
        assert_eq!(h.stats.dram_accesses, 1);
        let t2 = done(h.access_core(&mut mem, 0, AccessKind::Read, 0x1008, t1, true));
        assert_eq!(t2, t1 + h.cfg.l1.latency, "same line now hits L1");
        assert_eq!(h.stats.l1.hits, 1);
    }

    #[test]
    fn read_read_shares_write_invalidates() {
        let mut h = hw();
        let mut mem = PagedMem::new();
        let addr = 0x2000;
        done(h.access_core(&mut mem, 0, AccessKind::Read, addr, 0, true));
        done(h.access_core(&mut mem, 1, AccessKind::Read, addr, 1000, true));
        let bank = h.bank_of(addr) as usize;
        let line = addr >> LINE_SHIFT;
        let l = h.llc[bank].peek(line).unwrap();
        assert_eq!(l.sharers & 0b11, 0b11, "both tiles share");
        assert_eq!(h.stats.invalidations, 0);

        done(h.access_core(&mut mem, 2, AccessKind::Write, addr, 2000, true));
        assert_eq!(h.stats.invalidations, 2, "both sharers invalidated");
        let l = h.llc[bank].peek(line).unwrap();
        assert_eq!(l.owner, Some(2));
        assert!(!h.l1[0].contains(line));
        assert!(!h.l2[1].contains(line));
    }

    #[test]
    fn rmw_ping_pong_transfers_ownership() {
        let mut h = hw();
        let mut mem = PagedMem::new();
        let addr = 0x3000;
        done(h.access_core(&mut mem, 0, AccessKind::Rmw, addr, 0, true));
        done(h.access_core(&mut mem, 1, AccessKind::Rmw, addr, 1000, true));
        done(h.access_core(&mut mem, 0, AccessKind::Rmw, addr, 2000, true));
        assert!(h.stats.ownership_transfers >= 2, "ping-pong counted");
        assert!(h.stats.invalidations >= 2);
    }

    #[test]
    fn owned_then_remote_read_downgrades() {
        let mut h = hw();
        let mut mem = PagedMem::new();
        let addr = 0x4000;
        done(h.access_core(&mut mem, 3, AccessKind::Write, addr, 0, true));
        done(h.access_core(&mut mem, 4, AccessKind::Read, addr, 1000, true));
        let bank = h.bank_of(addr) as usize;
        let line = addr >> LINE_SHIFT;
        let l = h.llc[bank].peek(line).unwrap();
        assert_eq!(l.owner, None, "owner downgraded");
        assert!(l.sharers & (1 << 3) != 0);
        assert!(l.sharers & (1 << 4) != 0);
        assert_eq!(
            h.l2[3].peek(line).unwrap().state,
            PrivState::Shared,
            "old owner now shared"
        );
    }

    #[test]
    fn engine_llc_access_local_vs_remote_bank() {
        let mut h = hw();
        let mut mem = PagedMem::new();
        // Bank of 0x0000 line 0 -> bank 0.
        let local = EngineId {
            tile: 0,
            level: EngineLevel::Llc,
        };
        let t_local = done(h.access_engine(&mut mem, local, AccessKind::Read, 0x0, 0, true));
        // Line 1 -> bank 1: remote from tile 0's engine.
        let t_remote = done(h.access_engine(&mut mem, local, AccessKind::Read, 0x40, 0, true));
        assert!(
            t_remote > t_local,
            "remote bank access pays NoC: {t_local} vs {t_remote}"
        );
    }

    #[test]
    fn engine_l1d_caches_reads() {
        let mut h = hw();
        let mut mem = PagedMem::new();
        let eid = EngineId {
            tile: 0,
            level: EngineLevel::Llc,
        };
        let t1 = done(h.access_engine(&mut mem, eid, AccessKind::Read, 0x0, 0, true));
        let t2 = done(h.access_engine(&mut mem, eid, AccessKind::Read, 0x8, t1, true));
        assert_eq!(t2, t1 + h.cfg.engine.l1d_latency);
        assert_eq!(h.stats.engine_l1.hits, 1);
    }

    #[test]
    fn default_ctor_zero_fills_phantom() {
        let mut h = hw();
        let mut mem = PagedMem::new();
        // Pre-pollute memory so the zero-fill is observable.
        mem.write_u64(0x10_0000, 0xDEAD);
        h.ndc.register_morph(crate::ndc::MorphRegion {
            base: 0x10_0000,
            bound: 0x10_1000,
            level: MorphLevel::Llc,
            obj_size: 8,
            ctor: None,
            dtor: None,
            view: 0,
            stream: None,
        });
        let eid = EngineId {
            tile: h.bank_of(0x10_0000),
            level: EngineLevel::Llc,
        };
        let _ = eid;
        done(h.access_engine(
            &mut mem,
            EngineId {
                tile: h.bank_of(0x10_0000),
                level: EngineLevel::Llc,
            },
            AccessKind::Rmw,
            0x10_0000,
            0,
            true,
        ));
        assert_eq!(mem.read_u64(0x10_0000), 0, "constructor zero-filled");
        assert!(h.stats.ctor_actions >= 1);
        assert_eq!(h.stats.dram_accesses, 0, "phantom data never touches DRAM");
    }

    #[test]
    fn bank_mapping_keeps_multiline_object_together() {
        let mut h = hw();
        let base = 0x20_0000u64;
        // Without mapping, lines 0 and 1 of an object go to different banks.
        assert_ne!(h.bank_of(base), h.bank_of(base + 64));
        h.ndc.bank_maps.push(crate::ndc::BankMapRange {
            base,
            bound: base + 0x1000,
            ignore_line_bits: 1,
        });
        assert_eq!(h.bank_of(base), h.bank_of(base + 64));
        assert_ne!(h.bank_of(base), h.bank_of(base + 128));
    }

    #[test]
    fn flush_runs_destructors_for_tagged_lines() {
        let mut h = hw();
        let mut mem = PagedMem::new();
        h.ndc.register_morph(crate::ndc::MorphRegion {
            base: 0x30_0000,
            bound: 0x30_1000,
            level: MorphLevel::Llc,
            obj_size: 8,
            ctor: None,
            dtor: None,
            view: 0,
            stream: None,
        });
        let eid = EngineId {
            tile: h.bank_of(0x30_0000),
            level: EngineLevel::Llc,
        };
        done(h.access_engine(&mut mem, eid, AccessKind::Write, 0x30_0000, 0, true));
        let bank = h.bank_of(0x30_0000) as usize;
        assert!(h.llc[bank].contains(0x30_0000 >> LINE_SHIFT));
        h.flush_range(&mut mem, 0x30_0000, 0x1000, 100);
        assert!(!h.llc[bank].contains(0x30_0000 >> LINE_SHIFT));
    }

    #[test]
    fn llc_capacity_eviction_writes_back_dirty() {
        let mut h = hw();
        let mut mem = PagedMem::new();
        // Fill one LLC set beyond capacity with dirty lines from tile 0.
        // Set index repeats every sets*banks lines for bank 0.
        let sets = h.cfg.llc.sets();
        let stride = sets * h.cfg.tiles as u64 * LINE_SIZE; // same bank, same set
        let mut t = 0;
        for i in 0..(h.cfg.llc.ways as u64 + 2) {
            let addr = 0x100_0000 + i * stride;
            assert_eq!(h.bank_of(addr), h.bank_of(0x100_0000));
            t = done(h.access_core(&mut mem, 0, AccessKind::Write, addr, t, true)) + 1;
        }
        assert!(h.stats.llc.writebacks >= 1, "dirty victims written back");
        assert!(
            h.stats.dram_accesses > h.cfg.llc.ways as u64,
            "writebacks reach DRAM"
        );
    }
}
