//! Mesh network-on-chip with XY routing and per-link contention.
//!
//! Messages are broken into flits; each hop reserves serialization time on
//! the traversed link (a simple FIFO occupancy model) and pays router +
//! link latency. Flit-hops are counted for the traffic and energy metrics
//! (Fig. 5's NoC-traffic reduction and all energy results).

use crate::config::NocConfig;
use crate::fault::{LinkFault, LinkFaultKind};
use crate::stats::Stats;
use crate::trace::{TraceCategory, TraceEvent, Track};

/// Directions out of a router.
const DIRS: usize = 4; // east, west, north, south

/// A 2-D mesh NoC.
#[derive(Clone, Debug)]
pub struct Noc {
    cols: u32,
    #[allow(dead_code)] // kept for diagnostics/Display
    rows: u32,
    cfg: NocConfig,
    /// `link_free[node * DIRS + dir]`: cycle at which that output link is
    /// next available.
    link_free: Vec<u64>,
    /// Injected link faults, bucketed per link in CSR form: link `k`'s
    /// faults are `fault_entries[fault_start[k]..fault_start[k+1]]`. A hop
    /// checks exactly its own link's bucket instead of scanning the whole
    /// plan (empty unless a fault plan installed some).
    fault_start: Vec<u32>,
    fault_entries: Vec<LinkFault>,
}

impl Noc {
    /// Creates a mesh of `cols × rows` routers.
    pub fn new(cols: u32, rows: u32, cfg: NocConfig) -> Self {
        let links = (cols * rows) as usize * DIRS;
        Noc {
            cols,
            rows,
            cfg,
            link_free: vec![0; links],
            fault_start: vec![0; links + 1],
            fault_entries: Vec::new(),
        }
    }

    /// Installs link faults from a fault plan, bucketing them per link.
    /// Faults addressing links outside the mesh are ignored (they could
    /// never fire).
    pub fn install_faults(&mut self, faults: Vec<LinkFault>) {
        let links = self.link_free.len();
        let mut entries = faults;
        entries.retain(|lf| (lf.dir as usize) < DIRS && lf.node as usize * DIRS + DIRS <= links);
        // Stable sort: plan order is preserved within a link (the delay
        // computation is order-independent, but determinism is easier to
        // audit this way).
        entries.sort_by_key(|lf| lf.node as usize * DIRS + lf.dir as usize);
        self.fault_start = vec![0; links + 1];
        for lf in &entries {
            self.fault_start[lf.node as usize * DIRS + lf.dir as usize + 1] += 1;
        }
        for k in 0..links {
            self.fault_start[k + 1] += self.fault_start[k];
        }
        self.fault_entries = entries;
    }

    /// The faults installed on one link.
    #[inline]
    fn link_faults(&self, node: usize, dir: usize) -> &[LinkFault] {
        let k = node * DIRS + dir;
        let lo = self.fault_start[k] as usize;
        let hi = self.fault_start[k + 1] as usize;
        &self.fault_entries[lo..hi]
    }

    /// Outage wait + slowdown penalty for a head flit reaching
    /// `node`/`dir` at `start`: returns the (possibly deferred) link entry
    /// time and the extra per-hop latency.
    fn link_fault_delay(&self, node: usize, dir: usize, mut start: u64) -> (u64, u64) {
        let faults = self.link_faults(node, dir);
        // An outage defers the head flit to the end of the window; chained
        // outages are rare but handled by re-checking from the new time.
        while let Some(w) = faults
            .iter()
            .find(|lf| matches!(lf.kind, LinkFaultKind::Outage) && lf.window.contains(start))
        {
            start = w.window.end;
        }
        let mut extra = 0u64;
        for lf in faults {
            if lf.window.contains(start) {
                if let LinkFaultKind::Slowdown { extra: e } = lf.kind {
                    extra += e;
                }
            }
        }
        (start, extra)
    }

    #[inline]
    fn coords(&self, tile: u32) -> (u32, u32) {
        (tile % self.cols, tile / self.cols)
    }

    /// Number of mesh hops between two tiles (XY routing).
    pub fn hops(&self, from: u32, to: u32) -> u32 {
        let (fx, fy) = self.coords(from);
        let (tx, ty) = self.coords(to);
        fx.abs_diff(tx) + fy.abs_diff(ty)
    }

    /// Number of flits for a payload of `bytes`.
    pub fn flits(&self, bytes: u32) -> u32 {
        let flit_bytes = self.cfg.flit_bits / 8;
        bytes.div_ceil(flit_bytes).max(1)
    }

    /// Sends a `bytes`-byte message from `from` to `to` starting at `now`;
    /// returns the arrival time. Reserves serialization time on every
    /// traversed link and counts flit-hops into `stats`.
    pub fn send(&mut self, from: u32, to: u32, bytes: u32, now: u64, stats: &mut Stats) -> u64 {
        self.send_tagged(from, to, bytes, now, stats, None)
    }

    /// Like [`Noc::send`], but tags the recorded `noc.msg` trace event
    /// with the invoke-lifecycle span the message belongs to, so the
    /// Perfetto export links the packet's transit into the span's flow.
    /// Timing is identical to `send`; `span` only affects trace output.
    pub fn send_tagged(
        &mut self,
        from: u32,
        to: u32,
        bytes: u32,
        now: u64,
        stats: &mut Stats,
        span: Option<crate::span::SpanId>,
    ) -> u64 {
        stats.noc_messages += 1;
        if from == to {
            // Same tile: no network traversal — and no profiling scope,
            // so the (very common) local send costs two branches, not two
            // clock reads. Phase::Noc self-time covers real traversals.
            return now;
        }
        crate::perf::prof_scope!(crate::perf::Phase::Noc);
        let flits = self.flits(bytes) as u64;
        let (mut x, mut y) = self.coords(from);
        let (tx, ty) = self.coords(to);
        let mut t = now;
        let mut degraded = 0u64;
        while (x, y) != (tx, ty) {
            let (dir, nx, ny) = if x < tx {
                (0, x + 1, y)
            } else if x > tx {
                (1, x - 1, y)
            } else if y < ty {
                (2, x, y + 1)
            } else {
                (3, x, y - 1)
            };
            let node = (y * self.cols + x) as usize;
            // Head flit waits for the link, then the message occupies it
            // for `flits` cycles (serialization).
            let mut start = t.max(self.link_free[node * DIRS + dir]);
            let mut extra = 0;
            if !self.fault_entries.is_empty() {
                let (deferred, slow) = self.link_fault_delay(node, dir, start);
                degraded += (deferred - start) + slow;
                start = deferred;
                extra = slow;
            }
            self.link_free[node * DIRS + dir] = start + flits;
            t = start + self.cfg.router_delay + self.cfg.link_delay + extra;
            stats.noc_flit_hops += flits;
            x = nx;
            y = ny;
        }
        // Tail flits arrive `flits-1` cycles after the head.
        let arrive = t + flits.saturating_sub(1);
        if degraded > 0 {
            stats.fault_degraded_cycles += degraded;
            stats.trace.record(|| {
                TraceEvent::instant(
                    now,
                    TraceCategory::Fault,
                    "fault.noc_degraded",
                    Track::Noc(from),
                    &[("to", to as u64), ("extra", degraded)],
                )
            });
        }
        stats.trace.record(|| {
            let mut args = [("to", to as u64), ("flits", flits), ("span", 0)];
            let nargs = match span {
                Some(id) => {
                    args[2].1 = id.0 as u64;
                    3
                }
                None => 2,
            };
            TraceEvent::span(
                now,
                arrive - now,
                TraceCategory::Noc,
                "noc.msg",
                Track::Noc(from),
                &args[..nargs],
            )
        });
        arrive
    }

    /// Latency of an uncontended message (no reservation; for estimates).
    pub fn uncontended_latency(&self, from: u32, to: u32, bytes: u32) -> u64 {
        let hops = self.hops(from, to) as u64;
        let flits = self.flits(bytes) as u64;
        hops * (self.cfg.router_delay + self.cfg.link_delay) + flits.saturating_sub(1)
    }
}

impl Noc {
    /// Serializes link occupancy (see [`crate::snapshot`]). Geometry and
    /// installed faults are config-derived and not serialized.
    pub(crate) fn snap_write(&self, w: &mut levi_isa::codec::Writer) {
        w.u32(self.link_free.len() as u32);
        for t in &self.link_free {
            w.u64(*t);
        }
    }

    /// Restores link occupancy written by [`Noc::snap_write`].
    pub(crate) fn snap_read(
        &mut self,
        r: &mut levi_isa::codec::Reader,
    ) -> Result<(), levi_isa::codec::CodecError> {
        let n = r.count(8)?;
        if n != self.link_free.len() {
            return Err(levi_isa::codec::CodecError::Invalid("noc link count"));
        }
        for t in &mut self.link_free {
            *t = r.u64()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    fn noc4x4() -> Noc {
        let cfg = MachineConfig::paper_default();
        let (c, r) = cfg.mesh_dims();
        Noc::new(c, r, cfg.noc)
    }

    #[test]
    fn hops_xy() {
        let n = noc4x4();
        assert_eq!(n.hops(0, 0), 0);
        assert_eq!(n.hops(0, 3), 3);
        assert_eq!(n.hops(0, 15), 6, "corner to corner of a 4x4 mesh");
        assert_eq!(n.hops(5, 6), 1);
        assert_eq!(n.hops(5, 9), 1);
    }

    #[test]
    fn flit_count() {
        let n = noc4x4();
        assert_eq!(n.flits(8), 1, "control message fits one 16B flit");
        assert_eq!(n.flits(16), 1);
        assert_eq!(n.flits(17), 2);
        assert_eq!(n.flits(72), 5, "64B data + 8B header");
    }

    #[test]
    fn same_tile_is_free() {
        let mut n = noc4x4();
        let mut s = Stats::new();
        assert_eq!(n.send(3, 3, 64, 100, &mut s), 100);
        assert_eq!(s.noc_flit_hops, 0);
    }

    #[test]
    fn latency_scales_with_hops() {
        let mut s = Stats::new();
        let t1 = noc4x4().send(0, 1, 8, 0, &mut s);
        let t2 = noc4x4().send(0, 3, 8, 0, &mut s);
        assert_eq!(t1, 3, "1 hop = router 2 + link 1");
        assert_eq!(t2, 9, "3 hops");
    }

    #[test]
    fn flit_hops_counted() {
        let mut n = noc4x4();
        let mut s = Stats::new();
        n.send(0, 15, 72, 0, &mut s); // 5 flits x 6 hops
        assert_eq!(s.noc_flit_hops, 30);
        assert_eq!(s.noc_messages, 1);
    }

    #[test]
    fn contention_delays_second_message() {
        let mut n = noc4x4();
        let mut s = Stats::new();
        // Two large messages over the same first link at the same time.
        let a = n.send(0, 3, 64, 0, &mut s);
        let b = n.send(0, 3, 64, 0, &mut s);
        assert!(
            b > a,
            "second message serializes behind the first: {a} vs {b}"
        );
    }

    #[test]
    fn link_slowdown_adds_latency_and_counts_degradation() {
        use crate::fault::{CycleWindow, LinkFault, LinkFaultKind};
        let mut clean = noc4x4();
        let mut faulty = noc4x4();
        // Slow the eastbound link out of node 0 during the send.
        faulty.install_faults(vec![LinkFault {
            node: 0,
            dir: 0,
            window: CycleWindow::new(0, 1000),
            kind: LinkFaultKind::Slowdown { extra: 10 },
        }]);
        let mut s0 = Stats::new();
        let mut s1 = Stats::new();
        let base = clean.send(0, 1, 8, 0, &mut s0);
        let slow = faulty.send(0, 1, 8, 0, &mut s1);
        assert_eq!(slow, base + 10);
        assert_eq!(s1.fault_degraded_cycles, 10);
        assert_eq!(s0.fault_degraded_cycles, 0);
    }

    #[test]
    fn link_outage_defers_to_window_end() {
        use crate::fault::{CycleWindow, LinkFault, LinkFaultKind};
        let mut n = noc4x4();
        n.install_faults(vec![LinkFault {
            node: 0,
            dir: 0,
            window: CycleWindow::new(0, 500),
            kind: LinkFaultKind::Outage,
        }]);
        let mut s = Stats::new();
        let t = n.send(0, 1, 8, 100, &mut s);
        assert_eq!(t, 500 + 3, "waits out the outage, then 1 hop");
        assert_eq!(s.fault_degraded_cycles, 400);
        // Outside the window the link behaves normally.
        let mut s2 = Stats::new();
        let t2 = n.send(0, 1, 8, 1000, &mut s2);
        assert_eq!(t2, 1003);
        assert_eq!(s2.fault_degraded_cycles, 0);
    }

    #[test]
    fn faults_on_other_links_do_not_perturb() {
        use crate::fault::{CycleWindow, LinkFault, LinkFaultKind};
        let mut clean = noc4x4();
        let mut faulty = noc4x4();
        // Fault a link the 0 -> 1 message never crosses.
        faulty.install_faults(vec![LinkFault {
            node: 5,
            dir: 2,
            window: CycleWindow::new(0, u64::MAX),
            kind: LinkFaultKind::Outage,
        }]);
        let mut s0 = Stats::new();
        let mut s1 = Stats::new();
        assert_eq!(
            clean.send(0, 1, 64, 0, &mut s0),
            faulty.send(0, 1, 64, 0, &mut s1)
        );
        assert_eq!(s1.fault_degraded_cycles, 0);
    }

    #[test]
    fn uncontended_estimate_matches_first_send() {
        let mut n = noc4x4();
        let mut s = Stats::new();
        let est = n.uncontended_latency(2, 14, 72);
        let real = n.send(2, 14, 72, 1000, &mut s) - 1000;
        assert_eq!(est, real);
    }
}
