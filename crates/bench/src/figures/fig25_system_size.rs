//! Fig. 25 — sensitivity to system size (hash table).
//!
//! Paper: Leviathan's advantage grows with tile count — bigger meshes
//! mean longer round trips for the baseline's per-node fetches, while the
//! offloaded chain walk pays one hop per node.

use levi_workloads::hashtable::{HashtableWorkload, HtScale, HtVariant};
use levi_workloads::Workload;

use crate::runner::{Figure, RunCtx};
use crate::{header, table_report, Sweep};

/// The figure descriptor.
pub const FIG: Figure = Figure {
    id: "fig25_system_size",
    about: "hash-table sensitivity to tile count (paper Fig. 25)",
    workloads: &["hashtable"],
    run,
};

fn run(ctx: &RunCtx) {
    header(
        "Fig. 25 — hash-table sensitivity to tile count",
        "paper: benefit grows with system size (NoC savings dominate)",
    );
    let w = &HashtableWorkload;
    let tiles_list: &[u32] = if ctx.quick {
        &[4, 8]
    } else {
        &[4, 8, 16, 32, 64]
    };
    // Golden checksums depend on the tile count (lookups are per-thread),
    // so each shape is checked against its own scale's model.
    let mut jobs: Vec<(String, (HtScale, HtVariant))> = Vec::new();
    for &tiles in tiles_list {
        let mut scale = if ctx.quick {
            HtScale::test(64)
        } else {
            HtScale::paper(64)
        };
        scale.tiles = tiles;
        jobs.push((
            format!("base x{tiles}"),
            (scale.clone(), HtVariant::Baseline),
        ));
        jobs.push((format!("lev x{tiles}"), (scale, HtVariant::Leviathan)));
    }
    let env = &ctx.env;
    let mut runs = Sweep::new()
        .variants(jobs.iter().map(|(label, job)| (label.as_str(), job)))
        .run(|label, job| {
            let (scale, v) = (&job.0, job.1);
            let o = w.run(v, scale, &(), env).expect_done(label);
            assert_eq!(
                o.checksum,
                w.golden(v, scale, &()),
                "{label} diverged from the golden model"
            );
            o
        })
        .into_iter();
    let mut rows = Vec::new();
    for &tiles in tiles_list {
        let base = runs.next().unwrap().1;
        let lev = runs.next().unwrap().1;
        crate::progressln!("  ran tiles={tiles}");
        rows.push(vec![
            tiles.to_string(),
            format!(
                "{:.2}x",
                base.metrics.cycles as f64 / lev.metrics.cycles as f64
            ),
            base.metrics.stats.noc_flit_hops.to_string(),
            lev.metrics.stats.noc_flit_hops.to_string(),
        ]);
    }
    table_report(
        "fig25_system_size",
        &[
            "tiles",
            "Leviathan speedup",
            "base flit-hops",
            "lev flit-hops",
        ],
        &rows,
    );
}
