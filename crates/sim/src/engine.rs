//! Near-data engine hardware model.
//!
//! Every tile has two engines (paper Sec. VII: "our simulator models
//! engines at both the L2 and LLC bank"). An engine is a dataflow fabric:
//! instructions issue when their operands are ready, subject to per-cycle
//! functional-unit limits (15 integer + 10 memory FUs by default), plus a
//! small coherent L1d, an rTLB, and a task-context buffer.

use std::fmt;

use crate::cache::CacheBank;
use crate::config::{CacheConfig, EngineConfig, Replacement};

/// Which of a tile's two engines.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EngineLevel {
    /// The engine attached to the tile's private L2.
    L2,
    /// The engine attached to the tile's LLC bank.
    Llc,
}

/// Identifies one engine: a tile and a level.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EngineId {
    /// Tile index.
    pub tile: u32,
    /// L2 or LLC engine.
    pub level: EngineLevel,
}

impl EngineId {
    /// Flat index for `2 * tiles` storage (L2 engines first per tile).
    pub fn index(self) -> usize {
        self.tile as usize * 2
            + match self.level {
                EngineLevel::L2 => 0,
                EngineLevel::Llc => 1,
            }
    }
}

impl fmt::Display for EngineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "engine[{}.{:?}]", self.tile, self.level)
    }
}

/// Per-cycle resource reservation cursor.
///
/// Models "at most `limit` operations per cycle" for a resource whose
/// reservations arrive in roughly (but not exactly) increasing time order:
/// requests earlier than the cursor are granted optimistically at their own
/// time, which keeps the model deterministic and monotonic per resource.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FuCursor {
    cycle: u64,
    used: u32,
    limit: u32,
}

impl FuCursor {
    /// Creates a cursor with the given per-cycle limit.
    ///
    /// # Panics
    /// Panics if `limit` is zero.
    pub fn new(limit: u32) -> Self {
        assert!(limit > 0, "FU limit must be positive");
        FuCursor {
            cycle: 0,
            used: 0,
            limit,
        }
    }

    /// Reserves one slot at or after `t`; returns the granted cycle.
    pub fn reserve(&mut self, t: u64) -> u64 {
        if t > self.cycle {
            self.cycle = t;
            self.used = 1;
            t
        } else {
            // Late (out-of-order) requests are granted at the cursor.
            if self.used < self.limit {
                self.used += 1;
                self.cycle
            } else {
                self.cycle += 1;
                self.used = 1;
                self.cycle
            }
        }
    }
}

/// Sliding-window per-cycle FU reservation.
///
/// Unlike [`FuCursor`], which is strictly monotonic, `WindowFu` keeps a
/// short history window so requests that arrive out of order (inline
/// actions and offloaded tasks interleave non-monotonically) can fill idle
/// slots in the recent past instead of being pushed behind the newest
/// reservation.
#[derive(Clone, Debug)]
pub struct WindowFu {
    start: u64,
    used: Vec<u16>,
    limit: u32,
}

/// History window length in cycles.
const FU_WINDOW: usize = 1024;

impl WindowFu {
    /// Creates a window with the given per-cycle limit.
    ///
    /// # Panics
    /// Panics if `limit` is zero.
    pub fn new(limit: u32) -> Self {
        assert!(limit > 0);
        WindowFu {
            start: 0,
            used: vec![0; FU_WINDOW],
            limit,
        }
    }

    /// Reserves one slot at or after `t`; returns the granted cycle.
    pub fn reserve(&mut self, t: u64) -> u64 {
        let mut t = t.max(self.start);
        loop {
            // Slide the window forward if `t` runs past it.
            if t >= self.start + FU_WINDOW as u64 {
                let new_start = t - (FU_WINDOW as u64) / 2;
                for c in self.start..new_start.min(self.start + FU_WINDOW as u64) {
                    self.used[(c % FU_WINDOW as u64) as usize] = 0;
                }
                if new_start >= self.start + FU_WINDOW as u64 {
                    self.used.iter_mut().for_each(|u| *u = 0);
                }
                self.start = new_start;
            }
            let slot = &mut self.used[(t % FU_WINDOW as u64) as usize];
            if (*slot as u32) < self.limit {
                *slot += 1;
                return t;
            }
            t += 1;
        }
    }
}

/// Timing and resource state of one engine.
#[derive(Clone, Debug)]
pub struct EngineState {
    /// This engine's identity.
    pub id: EngineId,
    /// Integer-FU issue window.
    pub int_fus: WindowFu,
    /// Memory-FU issue window.
    pub mem_fus: WindowFu,
    /// The engine's small coherent L1d.
    pub l1d: CacheBank,
    /// L1d hit latency.
    pub l1d_latency: u64,
    /// Per-PE latency.
    pub pe_latency: u64,
    /// Free task contexts for *offloaded* tasks (half the context buffer;
    /// the other half is reserved for data-triggered actions, which this
    /// model executes inline — see DESIGN.md).
    pub offload_ctxs_free: u32,
    /// Total offloaded-task context capacity.
    pub offload_ctxs_cap: u32,
    /// True when the engine is idealized (0-cycle, unlimited FUs, free).
    pub idealized: bool,
}

impl EngineState {
    /// Builds an engine from the config.
    pub fn new(id: EngineId, cfg: &EngineConfig) -> Self {
        let l1_cfg = CacheConfig {
            size_bytes: cfg.l1d_bytes,
            ways: 4,
            latency: cfg.l1d_latency,
            replacement: Replacement::Lru,
        };
        let offload = (cfg.contexts / 2).max(1);
        EngineState {
            id,
            int_fus: WindowFu::new(cfg.int_fus),
            mem_fus: WindowFu::new(cfg.mem_fus),
            l1d: CacheBank::new(&l1_cfg),
            l1d_latency: cfg.l1d_latency,
            pe_latency: cfg.pe_latency,
            offload_ctxs_free: offload,
            offload_ctxs_cap: offload,
            idealized: cfg.idealized,
        }
    }

    /// Reserves an integer FU slot at or after `t`.
    pub fn reserve_int(&mut self, t: u64) -> u64 {
        if self.idealized {
            t
        } else {
            self.int_fus.reserve(t)
        }
    }

    /// Reserves a memory FU slot at or after `t`.
    pub fn reserve_mem(&mut self, t: u64) -> u64 {
        if self.idealized {
            t
        } else {
            self.mem_fus.reserve(t)
        }
    }

    /// Instruction latency through a PE.
    pub fn latency(&self) -> u64 {
        if self.idealized {
            0
        } else {
            self.pe_latency
        }
    }

    /// Tries to reserve an offloaded-task context; returns false (NACK) if
    /// none is free. Idealized engines have unlimited contexts.
    pub fn try_reserve_ctx(&mut self) -> bool {
        if self.idealized {
            return true;
        }
        if self.offload_ctxs_free > 0 {
            self.offload_ctxs_free -= 1;
            true
        } else {
            false
        }
    }

    /// Releases an offloaded-task context.
    pub fn release_ctx(&mut self) {
        if self.idealized {
            return;
        }
        assert!(
            self.offload_ctxs_free < self.offload_ctxs_cap,
            "context double-release on {}",
            self.id
        );
        self.offload_ctxs_free += 1;
    }

    /// Offloaded-task contexts currently occupied (for occupancy sampling).
    pub fn ctxs_in_use(&self) -> u32 {
        self.offload_ctxs_cap - self.offload_ctxs_free
    }
}

impl FuCursor {
    /// Serializes cursor state (see [`crate::snapshot`]).
    pub(crate) fn snap_write(&self, w: &mut levi_isa::codec::Writer) {
        w.u64(self.cycle);
        w.u32(self.used);
        w.u32(self.limit);
    }

    /// Restores a cursor written by [`FuCursor::snap_write`].
    pub(crate) fn snap_read(
        r: &mut levi_isa::codec::Reader,
    ) -> Result<Self, levi_isa::codec::CodecError> {
        let cycle = r.u64()?;
        let used = r.u32()?;
        let limit = r.u32()?;
        if limit == 0 {
            return Err(levi_isa::codec::CodecError::Invalid("fu cursor limit"));
        }
        Ok(FuCursor { cycle, used, limit })
    }
}

impl WindowFu {
    /// Serializes window state (see [`crate::snapshot`]).
    pub(crate) fn snap_write(&self, w: &mut levi_isa::codec::Writer) {
        w.u64(self.start);
        w.u32(self.limit);
        w.u32(self.used.len() as u32);
        for u in &self.used {
            w.u16(*u);
        }
    }

    /// Restores window state written by [`WindowFu::snap_write`] into an
    /// existing window (the length is fixed at [`FU_WINDOW`]).
    pub(crate) fn snap_read(
        &mut self,
        r: &mut levi_isa::codec::Reader,
    ) -> Result<(), levi_isa::codec::CodecError> {
        self.start = r.u64()?;
        self.limit = r.u32()?;
        if self.limit == 0 {
            return Err(levi_isa::codec::CodecError::Invalid("fu window limit"));
        }
        let n = r.count(2)?;
        if n != self.used.len() {
            return Err(levi_isa::codec::CodecError::Invalid("fu window length"));
        }
        for u in &mut self.used {
            *u = r.u16()?;
        }
        Ok(())
    }
}

impl EngineState {
    /// Serializes mutable engine state (see [`crate::snapshot`]): FU
    /// windows, L1d contents, and free offload contexts. Identity and
    /// static parameters come from the config at restore time.
    pub(crate) fn snap_write(&self, w: &mut levi_isa::codec::Writer) {
        self.int_fus.snap_write(w);
        self.mem_fus.snap_write(w);
        self.l1d.snap_write(w);
        w.u32(self.offload_ctxs_free);
    }

    /// Restores state written by [`EngineState::snap_write`].
    pub(crate) fn snap_read(
        &mut self,
        r: &mut levi_isa::codec::Reader,
    ) -> Result<(), levi_isa::codec::CodecError> {
        self.int_fus.snap_read(r)?;
        self.mem_fus.snap_read(r)?;
        self.l1d.snap_read(r)?;
        self.offload_ctxs_free = r.u32()?;
        if self.offload_ctxs_free > self.offload_ctxs_cap {
            return Err(levi_isa::codec::CodecError::Invalid("engine free contexts"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    #[test]
    fn engine_id_indexing() {
        let a = EngineId {
            tile: 0,
            level: EngineLevel::L2,
        };
        let b = EngineId {
            tile: 0,
            level: EngineLevel::Llc,
        };
        let c = EngineId {
            tile: 3,
            level: EngineLevel::L2,
        };
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(c.index(), 6);
    }

    #[test]
    fn fu_cursor_limits_per_cycle() {
        let mut fu = FuCursor::new(2);
        assert_eq!(fu.reserve(10), 10);
        assert_eq!(fu.reserve(10), 10);
        assert_eq!(fu.reserve(10), 11, "third op in cycle 10 spills to 11");
        assert_eq!(fu.reserve(11), 11, "cycle 11 has one free slot");
        assert_eq!(fu.reserve(11), 12, "cycle 11 now full");
        assert_eq!(fu.reserve(20), 20);
    }

    #[test]
    fn fu_cursor_late_requests_granted_at_cursor() {
        let mut fu = FuCursor::new(1);
        assert_eq!(fu.reserve(100), 100);
        // A request "in the past" is granted at/after the cursor.
        let t = fu.reserve(50);
        assert!(t >= 100);
    }

    #[test]
    fn context_reservation() {
        let cfg = MachineConfig::paper_default().engine;
        let id = EngineId {
            tile: 0,
            level: EngineLevel::Llc,
        };
        let mut e = EngineState::new(id, &cfg);
        assert_eq!(e.offload_ctxs_cap, 16, "half of 32 contexts for offload");
        for _ in 0..16 {
            assert!(e.try_reserve_ctx());
        }
        assert!(!e.try_reserve_ctx(), "17th reservation NACKs");
        e.release_ctx();
        assert!(e.try_reserve_ctx());
    }

    #[test]
    fn idealized_engine_is_free() {
        let mut cfg = MachineConfig::paper_default().engine;
        cfg.idealized = true;
        let id = EngineId {
            tile: 1,
            level: EngineLevel::L2,
        };
        let mut e = EngineState::new(id, &cfg);
        assert_eq!(e.reserve_int(7), 7);
        assert_eq!(e.reserve_int(7), 7, "no FU limit");
        assert_eq!(e.latency(), 0);
        for _ in 0..1000 {
            assert!(e.try_reserve_ctx(), "unlimited contexts");
        }
    }

    #[test]
    #[should_panic(expected = "double-release")]
    fn context_double_release_panics() {
        let cfg = MachineConfig::paper_default().engine;
        let id = EngineId {
            tile: 0,
            level: EngineLevel::L2,
        };
        let mut e = EngineState::new(id, &cfg);
        e.release_ctx();
    }
}
