//! HATS: decoupled graph traversal via streaming (paper Sec. VIII-C,
//! Figs. 19–21, 23).
//!
//! One PageRank iteration over a community-structured graph. Edges are
//! processed destination-major; the *order* destinations are visited in
//! determines locality of the `rank[src]` accesses. A bounded
//! depth-first search (BDFS) over in-edges visits communities together,
//! turning scattered accesses into temporally clustered ones.
//!
//! Variants:
//! * **Baseline** — the core processes destinations in "memory layout"
//!   order, modeled as a shuffled order (web-crawl layouts have poor
//!   community locality): bad reuse, unpredictable branches.
//! * **Software BDFS** — the core runs the BDFS traversal itself:
//!   locality improves, but the traversal's data-dependent branches
//!   mispredict heavily and the traversal competes with edge processing.
//! * **tākō** — miss-triggered pseudo-streaming: the BDFS producer runs
//!   on the engine but can only refill one cache line of edges per
//!   activation and pays a re-initialization cost each time (Sec. VIII-C).
//! * **Leviathan** — a true decoupled stream: the producer runs ahead,
//!   the consumer's control flow collapses to a sequential loop over the
//!   stream (near-zero mispredictions).
//! * **Ideal** — Leviathan with idealized engines.
//!
//! Every variant processes each destination exactly once, so all compute
//! bit-identical `rank_next` vectors (checked by tests). Each thread owns
//! a static vertex partition; the BDFS descends only within it.

use std::sync::Arc;

use crate::rng::SmallRng;
use levi_isa::{FuncId, MemWidth, Program, ProgramBuilder, Reg};
use leviathan::{StreamSpec, System, SystemConfig};

use crate::gen::Graph;
use crate::harness::{RunEnv, RunOutcome, RunStatus, ScaleKind, Workload};
use crate::metrics::RunMetrics;

/// HATS variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HatsVariant {
    /// Layout-order processing on the core.
    Baseline,
    /// BDFS traversal executed by the core.
    SoftwareBdfs,
    /// Miss-triggered pseudo-streaming (tākō).
    Tako,
    /// Decoupled run-ahead stream (Leviathan).
    Leviathan,
    /// Leviathan with idealized engines.
    Ideal,
}

impl HatsVariant {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            HatsVariant::Baseline => "Baseline",
            HatsVariant::SoftwareBdfs => "SW BDFS",
            HatsVariant::Tako => "tako",
            HatsVariant::Leviathan => "Leviathan",
            HatsVariant::Ideal => "Ideal",
        }
    }

    /// All variants in presentation order.
    pub fn all() -> [HatsVariant; 5] {
        [
            HatsVariant::Baseline,
            HatsVariant::SoftwareBdfs,
            HatsVariant::Tako,
            HatsVariant::Leviathan,
            HatsVariant::Ideal,
        ]
    }
}

/// Scale knobs.
#[derive(Clone, Debug)]
pub struct HatsScale {
    /// Vertices.
    pub vertices: u32,
    /// Average in-degree.
    pub avg_degree: u32,
    /// Community size (planted partition).
    pub community: u32,
    /// Percent of edges staying within a community.
    pub intra_pct: u32,
    /// Tiles (= threads = streams).
    pub tiles: u32,
    /// Whole-hierarchy cache shrink factor (keeps LLC inclusivity while
    /// making the rank vector exceed the private caches, as uk-2002 does).
    pub cache_factor: u64,
    /// Stream buffer capacity in entries (Fig. 23 sweeps this).
    pub stream_capacity: u64,
    /// BDFS depth bound.
    pub depth_limit: u64,
    /// tākō's per-activation re-initialization cost in engine instrs.
    pub tako_reinit: u32,
    /// RNG seed.
    pub seed: u64,
}

impl HatsScale {
    /// Benchmark scale: a community-heavy graph whose rank vector is ~2×
    /// the LLC (uk-2002's ratio is larger still; shape is preserved).
    pub fn paper() -> Self {
        HatsScale {
            vertices: 32 * 1024,
            avg_degree: 8,
            // Communities sized so one community's working set (ranks +
            // its CSR slice) fits the scaled private caches — the regime
            // where traversal scheduling pays, as with uk-2002 on the
            // paper's full-size hierarchy.
            community: 128,
            intra_pct: 90,
            tiles: 16,
            cache_factor: 8,
            stream_capacity: 128,
            depth_limit: 8,
            tako_reinit: 120,
            seed: 0x447,
        }
    }

    /// Tiny scale for unit tests.
    pub fn test() -> Self {
        HatsScale {
            vertices: 8 * 1024,
            avg_degree: 6,
            community: 256,
            intra_pct: 85,
            tiles: 4,
            cache_factor: 8,
            stream_capacity: 64,
            depth_limit: 8,
            tako_reinit: 120,
            seed: 0x447,
        }
    }
}

/// Result of one HATS run.
#[derive(Clone, Debug)]
pub struct HatsResult {
    /// Measured metrics.
    pub metrics: RunMetrics,
    /// Checksum of the final rank vector.
    pub rank_checksum: u64,
    /// Total edges processed.
    pub edges: u64,
}

/// Per-thread context layout (all u64 fields).
mod ctx {
    pub const IN_OFFS: i32 = 0;
    pub const IN_NEIGH: i32 = 8;
    pub const VISITED: i32 = 16;
    pub const CURSOR: i32 = 24;
    pub const STACK: i32 = 32;
    pub const V0: i32 = 40;
    pub const V1: i32 = 48;
    pub const DEPTH: i32 = 56;
    pub const RANKS: i32 = 64;
    pub const OUTDEG: i32 = 72;
    pub const RNEXT: i32 = 80;
    pub const ORDER: i32 = 88;
    pub const SIZE: u64 = 96;
}

struct Programs {
    prog: Arc<Program>,
    producer: FuncId,
    consumer: FuncId,
    sw_bdfs: FuncId,
    baseline: FuncId,
    vertex_phase: FuncId,
}

/// Emits the edge-processing body: `rnext[dst] += rank[src]/outdeg[src]`.
fn emit_process(f: &mut FunctionBuilder<'_>, ctxreg: Reg, src: Reg, dst: Reg, scratch: [Reg; 4]) {
    let [a, deg, rank, cur] = scratch;
    f.ld8(a, ctxreg, ctx::OUTDEG);
    f.muli(deg, src, 4);
    f.add(a, a, deg);
    f.ld4(deg, a, 0);
    f.ld8(a, ctxreg, ctx::RANKS);
    f.muli(rank, src, 8);
    f.add(a, a, rank);
    f.ld8(rank, a, 0);
    f.divu(rank, rank, deg);
    f.ld8(a, ctxreg, ctx::RNEXT);
    f.muli(cur, dst, 8);
    f.add(a, a, cur);
    f.ld8(cur, a, 0);
    f.add(cur, cur, rank);
    f.st8(a, 0, cur);
}

use levi_isa::FunctionBuilder;

/// Emits the BDFS step: maintains the stack/cursor/visited state and
/// produces the next edge in `(src, dst)`, branching to `emitted` after
/// each generated edge and to `finished` when the partition is exhausted.
/// The caller places edge handling at `emitted` and must jump back to
/// `resume`.
#[allow(clippy::too_many_arguments)]
fn emit_bdfs(
    f: &mut FunctionBuilder<'_>,
    ctxreg: Reg,
    src: Reg,
    dst: Reg,
    emitted: levi_isa::Label,
    finished: levi_isa::Label,
) -> levi_isa::Label {
    // Persistent traversal registers.
    let (offs, neigh, visited, cursor, stack, v0, v1, dlim) = (
        Reg(40),
        Reg(41),
        Reg(42),
        Reg(43),
        Reg(44),
        Reg(45),
        Reg(46),
        Reg(47),
    );
    let (root, sp, e, end, tmp, addr, one, zero) = (
        Reg(48),
        Reg(49),
        Reg(50),
        Reg(51),
        Reg(52),
        Reg(53),
        Reg(54),
        Reg(55),
    );
    f.ld8(offs, ctxreg, ctx::IN_OFFS);
    f.ld8(neigh, ctxreg, ctx::IN_NEIGH);
    f.ld8(visited, ctxreg, ctx::VISITED);
    f.ld8(cursor, ctxreg, ctx::CURSOR);
    f.ld8(stack, ctxreg, ctx::STACK);
    f.ld8(v0, ctxreg, ctx::V0);
    f.ld8(v1, ctxreg, ctx::V1);
    f.ld8(dlim, ctxreg, ctx::DEPTH);
    f.imm(one, 1).imm(zero, 0);
    f.mov(root, v0);
    f.imm(sp, 0);

    let resume = f.label();
    let scan = f.label();
    let take_root = f.label();
    let have_work = f.label();
    let pop_stack = f.label();
    let no_descend = f.label();

    f.bind(resume);
    f.bne(sp, zero, have_work);
    // Scan for the next unvisited root.
    f.bind(scan);
    f.bge_u(root, v1, finished);
    f.add(addr, visited, root);
    f.ld1(tmp, addr, 0);
    f.beq(tmp, zero, take_root);
    f.addi(root, root, 1);
    f.jmp(scan);
    f.bind(take_root);
    f.add(addr, visited, root);
    f.st1(addr, 0, one);
    f.muli(addr, sp, 4);
    f.add(addr, addr, stack);
    f.st4(addr, 0, root);
    f.addi(sp, sp, 1);

    f.bind(have_work);
    // dst = stack[sp-1]
    f.subi(tmp, sp, 1);
    f.muli(addr, tmp, 4);
    f.add(addr, addr, stack);
    f.ld4(dst, addr, 0);
    // e = cursor[dst]; end = offs[dst+1]
    f.muli(addr, dst, 4);
    f.add(addr, addr, cursor);
    f.ld4(e, addr, 0);
    f.muli(tmp, dst, 4);
    f.add(tmp, tmp, offs);
    f.ld4(end, tmp, 4);
    f.blt_u(e, end, no_descend); // edges remain: emit one
    f.bind(pop_stack);
    f.subi(sp, sp, 1);
    f.jmp(resume);

    f.bind(no_descend);
    // src = neigh[e]; cursor[dst] = e + 1
    f.addi(tmp, e, 1);
    f.st4(addr, 0, tmp);
    f.muli(addr, e, 4);
    f.add(addr, addr, neigh);
    f.ld4(src, addr, 0);
    // Try to descend into src before emitting (depth- and range-bounded).
    let emit_only = f.label();
    f.bge_u(sp, dlim, emit_only);
    f.blt_u(src, v0, emit_only);
    f.bge_u(src, v1, emit_only);
    f.add(addr, visited, src);
    f.ld1(tmp, addr, 0);
    f.bne(tmp, zero, emit_only);
    f.st1(addr, 0, one);
    f.muli(addr, sp, 4);
    f.add(addr, addr, stack);
    f.st4(addr, 0, src);
    f.addi(sp, sp, 1);
    f.bind(emit_only);
    f.jmp(emitted);

    resume
}

fn build_programs() -> Programs {
    let mut pb = ProgramBuilder::new();

    // ---- stream producer: genStream(r0 = stream handle, r1 = ctx) ----
    let producer = {
        let mut f = pb.function("gen_stream");
        let (stream, ctxreg) = (Reg(0), Reg(1));
        let (src, dst, edge) = (Reg(8), Reg(9), Reg(10));
        let emitted = f.label();
        let finished = f.label();
        let resume = emit_bdfs(&mut f, ctxreg, src, dst, emitted, finished);
        f.bind(emitted);
        f.shli(edge, src, 32);
        f.or(edge, edge, dst);
        f.push(stream, edge);
        f.jmp(resume);
        f.bind(finished);
        f.halt();
        f.finish()
    };

    // ---- stream consumer: r0 = ctx2 {buffer, cap, result}, r1 = nedges,
    //      r2 = stream handle, r3 = ctx (for rank arrays) ----
    let consumer = {
        let mut f = pb.function("consume_stream");
        let (c2, n, stream, ctxreg) = (Reg(0), Reg(1), Reg(2), Reg(3));
        let (buffer, bound) = (Reg(8), Reg(9));
        let (i, addr, edge, src, dst, mask) =
            (Reg(10), Reg(12), Reg(13), Reg(14), Reg(15), Reg(16));
        let scratch = [Reg(20), Reg(21), Reg(22), Reg(23)];
        // The consumer issues *sequential* loads over the ring: a pointer
        // bump plus a predictable wrap branch (paper: "the core merely
        // issues sequential loads").
        f.ld8(buffer, c2, 0).ld8(bound, c2, 8);
        f.muli(bound, bound, 8);
        f.add(bound, bound, buffer);
        f.mov(addr, buffer);
        f.imm(i, 0);
        f.imm(mask, 0xFFFF_FFFFu64);
        let top = f.label();
        let out = f.label();
        let no_wrap = f.label();
        f.bind(top);
        f.bge_u(i, n, out);
        f.ld8(edge, addr, 0);
        f.pop(stream);
        f.addi(addr, addr, 8);
        f.blt_u(addr, bound, no_wrap);
        f.mov(addr, buffer);
        f.bind(no_wrap);
        f.shri(src, edge, 32);
        f.and(dst, edge, mask);
        emit_process(&mut f, ctxreg, src, dst, scratch);
        f.addi(i, i, 1);
        f.jmp(top);
        f.bind(out);
        f.halt();
        f.finish()
    };

    // ---- software BDFS on the core: r0 = ctx ----
    let sw_bdfs = {
        let mut f = pb.function("sw_bdfs");
        let ctxreg0 = Reg(0);
        let ctxreg = Reg(7);
        f.mov(ctxreg, ctxreg0);
        let (src, dst) = (Reg(8), Reg(9));
        let scratch = [Reg(20), Reg(21), Reg(22), Reg(23)];
        let emitted = f.label();
        let finished = f.label();
        let resume = emit_bdfs(&mut f, ctxreg, src, dst, emitted, finished);
        f.bind(emitted);
        emit_process(&mut f, ctxreg, src, dst, scratch);
        f.jmp(resume);
        f.bind(finished);
        f.halt();
        f.finish()
    };

    // ---- baseline: shuffled destination order. r0 = ctx, r1 = count ----
    let baseline = {
        let mut f = pb.function("baseline_order");
        let (ctxreg, count) = (Reg(0), Reg(1));
        let (order, offs, neigh) = (Reg(8), Reg(9), Reg(10));
        let (k, dst, e, end, addr, src) = (Reg(11), Reg(12), Reg(13), Reg(14), Reg(15), Reg(16));
        let scratch = [Reg(20), Reg(21), Reg(22), Reg(23)];
        f.ld8(order, ctxreg, ctx::ORDER);
        f.ld8(offs, ctxreg, ctx::IN_OFFS);
        f.ld8(neigh, ctxreg, ctx::IN_NEIGH);
        f.imm(k, 0);
        let top = f.label();
        let out = f.label();
        let inner = f.label();
        let next_k = f.label();
        f.bind(top);
        f.bge_u(k, count, out);
        f.muli(addr, k, 4);
        f.add(addr, addr, order);
        f.ld4(dst, addr, 0);
        f.muli(addr, dst, 4);
        f.add(addr, addr, offs);
        f.ld4(e, addr, 0);
        f.ld4(end, addr, 4);
        f.bind(inner);
        f.bge_u(e, end, next_k);
        f.muli(addr, e, 4);
        f.add(addr, addr, neigh);
        f.ld4(src, addr, 0);
        emit_process(&mut f, ctxreg, src, dst, scratch);
        f.addi(e, e, 1);
        f.jmp(inner);
        f.bind(next_k);
        f.addi(k, k, 1);
        f.jmp(top);
        f.bind(out);
        f.halt();
        f.finish()
    };

    // ---- vertex phase: r0 = v0, r1 = v1, r2 = ctx ----
    let vertex_phase = {
        let mut f = pb.function("vertex_phase");
        let (v0, v1, ctxreg) = (Reg(0), Reg(1), Reg(2));
        let (rnext, ranks, v, addr, nx, r, zero) =
            (Reg(10), Reg(11), Reg(8), Reg(14), Reg(15), Reg(16), Reg(17));
        f.ld8(rnext, ctxreg, ctx::RNEXT);
        f.ld8(ranks, ctxreg, ctx::RANKS);
        f.imm(zero, 0);
        f.mov(v, v0);
        let top = f.label();
        let done = f.label();
        f.bind(top);
        f.bge_u(v, v1, done);
        f.muli(addr, v, 8).add(addr, addr, rnext);
        f.ld8(nx, addr, 0);
        f.st8(addr, 0, zero);
        f.muli(r, nx, 217);
        f.shri(r, r, 8);
        f.addi(r, r, 1 << 12);
        f.muli(addr, v, 8).add(addr, addr, ranks);
        f.st8(addr, 0, r);
        f.addi(v, v, 1);
        f.jmp(top);
        f.bind(done);
        f.halt();
        f.finish()
    };

    Programs {
        prog: Arc::new(pb.finish().expect("HATS programs validate")),
        producer,
        consumer,
        sw_bdfs,
        baseline,
        vertex_phase,
    }
}

/// Builds the in-CSR (dst → srcs) and out-degrees from an out-CSR graph.
fn invert(graph: &Graph) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
    let nv = graph.num_vertices as usize;
    let mut outdeg = vec![0u32; nv];
    let mut in_off = vec![0u32; nv + 1];
    for s in 0..graph.num_vertices {
        outdeg[s as usize] = graph.out_degree(s);
        for &d in graph.neighbors_of(s) {
            in_off[d as usize + 1] += 1;
        }
    }
    for i in 0..nv {
        in_off[i + 1] += in_off[i];
    }
    let mut cursor = in_off.clone();
    let mut in_neigh = vec![0u32; graph.num_edges() as usize];
    for s in 0..graph.num_vertices {
        for &d in graph.neighbors_of(s) {
            in_neigh[cursor[d as usize] as usize] = s;
            cursor[d as usize] += 1;
        }
    }
    (in_off, in_neigh, outdeg)
}

/// Runs one HATS variant.
pub fn run_hats(variant: HatsVariant, scale: &HatsScale) -> HatsResult {
    let graph = Graph::community(
        scale.vertices,
        scale.avg_degree,
        scale.community,
        scale.intra_pct,
        scale.seed,
    );
    run_hats_on(variant, scale, &graph)
}

/// Runs one HATS variant on a pre-built graph.
pub fn run_hats_on(variant: HatsVariant, scale: &HatsScale, graph: &Graph) -> HatsResult {
    run_hats_with(variant, scale, graph, |_| {})
}

/// Runs one HATS variant with arbitrary configuration customization (the
/// unified harness injects fault plans and watchdogs through this hook).
pub fn run_hats_with(
    variant: HatsVariant,
    scale: &HatsScale,
    graph: &Graph,
    customize: impl FnOnce(&mut SystemConfig),
) -> HatsResult {
    let mut cfg = SystemConfig::with_tiles(scale.tiles);
    crate::metrics::shrink_caches(&mut cfg.machine, scale.cache_factor);
    customize(&mut cfg);
    if variant == HatsVariant::Ideal {
        cfg = cfg.idealized();
    }
    let mut sys = System::try_new(cfg).expect("HATS system config is valid");
    let nv = graph.num_vertices as u64;
    let (in_off, in_neigh, outdeg) = invert(graph);

    // ---- shared data ----
    let offs_a = sys.alloc_raw(4 * (nv + 1), 64);
    let neigh_a = sys.alloc_raw(4 * in_neigh.len().max(1) as u64, 64);
    let outdeg_a = sys.alloc_raw(4 * nv, 64);
    let ranks_a = sys.alloc_raw(8 * nv, 64);
    let rnext_a = sys.alloc_raw(8 * nv, 64);
    let visited_a = sys.alloc_raw(nv, 64);
    let cursor_a = sys.alloc_raw(4 * nv, 64);
    for (i, &o) in in_off.iter().enumerate() {
        sys.write(offs_a + 4 * i as u64, o as u64, MemWidth::B4);
    }
    for (i, &s) in in_neigh.iter().enumerate() {
        sys.write(neigh_a + 4 * i as u64, s as u64, MemWidth::B4);
    }
    for v in 0..nv {
        sys.write(outdeg_a + 4 * v, outdeg[v as usize] as u64, MemWidth::B4);
        sys.write_u64(ranks_a + 8 * v, crate::phi::INIT_RANK);
        // Per-vertex edge cursors start at the vertex's first in-edge.
        sys.write(cursor_a + 4 * v, in_off[v as usize] as u64, MemWidth::B4);
    }

    let tako_mode = variant == HatsVariant::Tako;
    let progs = build_programs();

    // ---- per-thread setup ----
    let per = (graph.num_vertices).div_ceil(scale.tiles) as u64;
    let mut edges_total = 0u64;
    sys.set_phase(0);
    for t in 0..scale.tiles {
        let v0 = (t as u64 * per).min(nv);
        let v1 = ((t as u64 + 1) * per).min(nv);
        // Edges processed by this thread = in-edges of its destinations.
        let my_edges = (in_off[v1 as usize] - in_off[v0 as usize]) as u64;
        edges_total += my_edges;

        let ctx_a = sys.alloc_raw(ctx::SIZE, 64);
        let stack_a = sys.alloc_raw(4 * (scale.depth_limit + 2), 64);
        sys.write_u64(ctx_a + ctx::IN_OFFS as u64, offs_a);
        sys.write_u64(ctx_a + ctx::IN_NEIGH as u64, neigh_a);
        sys.write_u64(ctx_a + ctx::VISITED as u64, visited_a);
        sys.write_u64(ctx_a + ctx::CURSOR as u64, cursor_a);
        sys.write_u64(ctx_a + ctx::STACK as u64, stack_a);
        sys.write_u64(ctx_a + ctx::V0 as u64, v0);
        sys.write_u64(ctx_a + ctx::V1 as u64, v1);
        sys.write_u64(ctx_a + ctx::DEPTH as u64, scale.depth_limit);
        sys.write_u64(ctx_a + ctx::RANKS as u64, ranks_a);
        sys.write_u64(ctx_a + ctx::OUTDEG as u64, outdeg_a);
        sys.write_u64(ctx_a + ctx::RNEXT as u64, rnext_a);

        match variant {
            HatsVariant::Baseline => {
                // Shuffled destination order models a layout with poor
                // community locality (e.g. crawl order).
                let count = v1 - v0;
                let order_a = sys.alloc_raw(4 * count.max(1), 64);
                let mut order: Vec<u32> = (v0 as u32..v1 as u32).collect();
                let mut rng = SmallRng::seed_from_u64(scale.seed ^ t as u64);
                rng.shuffle(&mut order);
                for (i, &d) in order.iter().enumerate() {
                    sys.write(order_a + 4 * i as u64, d as u64, MemWidth::B4);
                }
                sys.write_u64(ctx_a + ctx::ORDER as u64, order_a);
                sys.spawn_thread(t, &progs.prog, progs.baseline, &[ctx_a, count])
                    .unwrap();
            }
            HatsVariant::SoftwareBdfs => {
                sys.spawn_thread(t, &progs.prog, progs.sw_bdfs, &[ctx_a])
                    .unwrap();
            }
            HatsVariant::Tako | HatsVariant::Leviathan | HatsVariant::Ideal => {
                let mut spec = StreamSpec::new(
                    &format!("edges{t}"),
                    scale.stream_capacity,
                    t,
                    &progs.prog,
                    progs.producer,
                )
                .with_args(&[ctx_a]);
                if tako_mode {
                    spec = spec.miss_triggered(scale.tako_reinit);
                }
                let h = sys.create_stream(&spec).unwrap();
                let c2 = sys.alloc_raw(16, 64);
                sys.write_u64(c2, h.buffer);
                sys.write_u64(c2 + 8, h.capacity);
                sys.spawn_thread(
                    t,
                    &progs.prog,
                    progs.consumer,
                    &[c2, my_edges, h.reg_value(), ctx_a],
                )
                .unwrap();
            }
        }
    }
    sys.run().expect("HATS edge phase deadlocked");

    // ---- vertex phase ----
    sys.set_phase(1);
    let vctx = sys.alloc_raw(ctx::SIZE, 64);
    sys.write_u64(vctx + ctx::RANKS as u64, ranks_a);
    sys.write_u64(vctx + ctx::RNEXT as u64, rnext_a);
    for t in 0..scale.tiles {
        let v0 = (t as u64 * per).min(nv);
        let v1 = ((t as u64 + 1) * per).min(nv);
        sys.spawn_thread(t, &progs.prog, progs.vertex_phase, &[v0, v1, vctx])
            .unwrap();
    }
    sys.run().expect("HATS vertex phase deadlocked");

    let mut checksum = 0u64;
    for v in 0..nv {
        checksum = checksum.wrapping_add(sys.read_u64(ranks_a + 8 * v));
    }

    HatsResult {
        metrics: RunMetrics::capture(variant.label(), &sys),
        rank_checksum: checksum,
        edges: edges_total,
    }
}

/// Host golden model: one PageRank iteration (the traversal order never
/// changes the sums — shared with PHI via [`crate::gen::pagerank_checksum`]).
pub use crate::gen::pagerank_checksum as golden_checksum;

/// Registry entry for HATS (see [`crate::harness`]).
pub struct HatsWorkload;

impl Workload for HatsWorkload {
    type Variant = HatsVariant;
    type Scale = HatsScale;
    type Input = Graph;

    fn name(&self) -> &'static str {
        "hats"
    }

    fn variants(&self) -> Vec<(&'static str, HatsVariant)> {
        HatsVariant::all().iter().map(|&v| (v.label(), v)).collect()
    }

    fn scale(&self, kind: ScaleKind) -> HatsScale {
        match kind {
            ScaleKind::Paper => HatsScale::paper(),
            ScaleKind::Test | ScaleKind::Quick => HatsScale::test(),
        }
    }

    fn build_input(&self, scale: &HatsScale) -> Graph {
        Graph::community(
            scale.vertices,
            scale.avg_degree,
            scale.community,
            scale.intra_pct,
            scale.seed,
        )
    }

    fn describe(&self, scale: &HatsScale) -> String {
        format!(
            "{} vertices, communities of {} ({}% intra), {} tiles",
            scale.vertices, scale.community, scale.intra_pct, scale.tiles
        )
    }

    fn run(
        &self,
        variant: HatsVariant,
        scale: &HatsScale,
        graph: &Graph,
        env: &RunEnv,
    ) -> RunStatus {
        let r = run_hats_with(variant, scale, graph, |cfg| env.customize(cfg));
        RunStatus::Done(Box::new(
            RunOutcome::new(r.metrics, r.rank_checksum).with_aux("edges", r.edges),
        ))
    }

    fn golden(&self, _variant: HatsVariant, _scale: &HatsScale, graph: &Graph) -> u64 {
        golden_checksum(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_compute_identical_ranks() {
        let scale = HatsScale::test();
        let graph = Graph::community(
            scale.vertices,
            scale.avg_degree,
            scale.community,
            scale.intra_pct,
            scale.seed,
        );
        let golden = golden_checksum(&graph);
        for v in HatsVariant::all() {
            let r = run_hats_on(v, &scale, &graph);
            assert_eq!(
                r.rank_checksum, golden,
                "variant {v:?} diverged from the golden model"
            );
        }
    }

    #[test]
    fn streaming_beats_baseline_and_regularizes_branches() {
        let scale = HatsScale::test();
        let graph = Graph::community(
            scale.vertices,
            scale.avg_degree,
            scale.community,
            scale.intra_pct,
            scale.seed,
        );
        let base = run_hats_on(HatsVariant::Baseline, &scale, &graph);
        let lev = run_hats_on(HatsVariant::Leviathan, &scale, &graph);
        let speedup = lev.metrics.speedup_vs(&base.metrics);
        assert!(speedup > 1.15, "Leviathan HATS speedup {speedup:.2}x");
        // Branch mispredictions per edge collapse on the consumer.
        let base_mpe = base.metrics.stats.mispredicts as f64 / base.edges as f64;
        let lev_mpe = lev.metrics.stats.mispredicts as f64 / lev.edges as f64;
        assert!(
            lev_mpe < base_mpe * 0.5,
            "stream must regularize control flow: {lev_mpe:.3} vs {base_mpe:.3} mispredicts/edge"
        );
    }

    #[test]
    fn tako_needs_more_engine_instructions_per_edge() {
        let scale = HatsScale::test();
        let graph = Graph::community(
            scale.vertices,
            scale.avg_degree,
            scale.community,
            scale.intra_pct,
            scale.seed,
        );
        let tako = run_hats_on(HatsVariant::Tako, &scale, &graph);
        let lev = run_hats_on(HatsVariant::Leviathan, &scale, &graph);
        let tako_ipe = tako.metrics.stats.engine_instrs as f64 / tako.edges as f64;
        let lev_ipe = lev.metrics.stats.engine_instrs as f64 / lev.edges as f64;
        assert!(
            tako_ipe > lev_ipe,
            "miss-triggered restart must cost more engine work: {tako_ipe:.1} vs {lev_ipe:.1}"
        );
        assert!(
            lev.metrics.cycles < tako.metrics.cycles,
            "run-ahead must beat miss-triggered: {} vs {}",
            lev.metrics.cycles,
            tako.metrics.cycles
        );
    }
}
