//! The levi-serve wire protocol and the content-addressed job identity.
//!
//! Everything on the wire is **one JSON object per line**, both
//! directions, written with [`crate::json::JsonWriter`] and read with
//! [`crate::json::parse`] — no async framing, no length prefixes, just
//! the line discipline the rest of the harness already speaks.
//!
//! A client sends exactly one request line per connection:
//!
//! ```json
//! {"v":1,"cmd":"run","figure":"fig05_phi","quick":true}
//! ```
//!
//! optionally carrying `"filter"`, `"fault_seed"` / `"fault_horizon"`,
//! and `"timeout_ms"`. The server answers with a stream of events:
//!
//! ```json
//! {"event":"start","figure":"fig05_phi","key":"91c2...","cached":false,"coalesced":false}
//! {"event":"line","stream":"progress","text":"  ran Baseline ..."}
//! {"event":"line","stream":"out","text":"variant  cycles ..."}
//! {"event":"done","cached":false,"lines":17}
//! ```
//!
//! or a single `{"event":"error","code":...,"message":...}` — the typed
//! codes are `bad_request`, `busy` (bounded-queue back-pressure),
//! `timeout` (the job's queue deadline expired before a worker picked it
//! up), and `failed` (the figure panicked).
//!
//! # The cache key
//!
//! [`Job::cache_key`] is the content address of a run's output: FNV-1a
//! (the same [`levi_sim::fnv1a`] the snapshot digests use) over
//!
//! 1. the levi-serve [`SCHEMA_VERSION`] — bump it and every old cache
//!    entry misses,
//! 2. the canonical job text ([`Job::canon`]: figure, scale, filter,
//!    fault recipe — everything that changes the bytes a run prints),
//! 3. the [`levi_sim::config_digest`] of the paper-default machine
//!    shape, so a substrate change that moves any modeled parameter
//!    invalidates the cache, and
//! 4. the golden checksum of every workload the figure exercises at the
//!    requested scale, so a workload or input-generation change does
//!    too.
//!
//! The job timeout is deliberately **not** part of the key: two requests
//! differing only in patience want the same bytes.

use levi_workloads::harness::{find_workload, FaultSpec, RunEnv, ScaleKind};

use crate::json::{parse, Json, JsonWriter};
use crate::out::Line;
use crate::runner::RunCtx;

/// Version of the wire protocol *and* of the cache's content addressing.
/// Incompatible evolution on either side bumps this.
pub const SCHEMA_VERSION: u32 = 1;

/// One experiment request: which figure, at which scale, under which
/// environment. This is the unit of execution, coalescing, and caching.
#[derive(Clone, Debug)]
pub struct Job {
    /// Figure id. Clients may send a prefix; the server canonicalizes it
    /// via [`crate::runner::find_figure`] before keying.
    pub figure: String,
    /// Reduced-scale run (`--quick`).
    pub quick: bool,
    /// Variant label filter (`--filter`).
    pub filter: Option<String>,
    /// Seeded fault-plan recipe (`--fault-plan`).
    pub fault: Option<FaultSpec>,
    /// Patience bound: if the job is still queued when this many
    /// milliseconds have passed, the server answers `timeout` instead of
    /// executing. Not part of the job's identity.
    pub timeout_ms: Option<u64>,
}

impl Job {
    /// A full-scale, unfiltered, unfaulted job for `figure`.
    pub fn new(figure: &str) -> Job {
        Job {
            figure: figure.to_string(),
            quick: false,
            filter: None,
            fault: None,
            timeout_ms: None,
        }
    }

    /// The canonical one-line text of everything that determines this
    /// job's output bytes. Two jobs with equal `canon` coalesce and hit
    /// the same cache entry; the timeout is excluded on purpose.
    pub fn canon(&self) -> String {
        format!(
            "figure={} quick={} filter={} fault={}",
            self.figure,
            u8::from(self.quick),
            self.filter
                .as_ref()
                .map_or_else(|| "-".to_string(), |f| format!("{f:?}")),
            self.fault
                .map_or_else(|| "-".to_string(), |f| format!("{}:{}", f.seed, f.horizon)),
        )
    }

    /// The scale this job selects.
    pub fn kind(&self) -> ScaleKind {
        if self.quick {
            ScaleKind::Quick
        } else {
            ScaleKind::Paper
        }
    }

    /// The [`RunCtx`] this job describes. Journal resume, telemetry
    /// export, and snapshot hooks are CLI-local concerns and stay off
    /// the wire in protocol v1.
    pub fn run_ctx(&self) -> RunCtx {
        RunCtx {
            quick: self.quick,
            filter: self.filter.clone(),
            env: RunEnv {
                fault: self.fault,
                ..RunEnv::default()
            },
        }
    }

    /// The content address of this job's result (see the module docs for
    /// the key recipe). Requires `figure` to be a canonical id.
    ///
    /// # Errors
    /// Unknown figure or workload names are errors (the server answers
    /// `bad_request`).
    pub fn cache_key(&self) -> Result<u64, String> {
        let fig = crate::runner::find_figure(&self.figure)
            .ok_or_else(|| format!("unknown figure {:?}", self.figure))?;
        let mut text = format!("levi-serve v{SCHEMA_VERSION}\n{}\n", self.canon());
        let digest = levi_sim::config_digest(&levi_sim::MachineConfig::paper_default());
        text.push_str(&format!("config {digest:016x}\n"));
        for name in fig.workloads {
            let w = find_workload(name)
                .ok_or_else(|| format!("figure {} names unknown workload {name:?}", fig.id))?;
            let prepared = w.prepare(self.kind());
            let labels = w.variant_labels();
            let baseline = labels
                .first()
                .ok_or_else(|| format!("workload {name:?} has no variants"))?;
            // The baseline golden covers the workload's input generation
            // and reference model; variant-specific goldens derive from
            // the same input, and the simulated runs are checked against
            // them at execution time anyway.
            text.push_str(&format!(
                "workload {name} golden {:016x}\n",
                prepared.golden(baseline)
            ));
        }
        Ok(levi_sim::fnv1a(text.as_bytes()))
    }

    /// Renders the request line (no trailing newline).
    pub fn request_line(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.key("v").u64(u64::from(SCHEMA_VERSION));
        w.key("cmd").str("run");
        w.key("figure").str(&self.figure);
        w.key("quick").bool(self.quick);
        if let Some(f) = &self.filter {
            w.key("filter").str(f);
        }
        if let Some(f) = &self.fault {
            w.key("fault_seed").u64(f.seed);
            w.key("fault_horizon").u64(f.horizon);
        }
        if let Some(t) = self.timeout_ms {
            w.key("timeout_ms").u64(t);
        }
        w.end_obj();
        w.finish()
    }

    /// Parses a request line.
    ///
    /// # Errors
    /// Malformed JSON, a version mismatch, an unknown command, and
    /// missing or mistyped fields are errors (answered as `bad_request`).
    pub fn parse_request(line: &str) -> Result<Job, String> {
        let doc = parse(line).map_err(|e| format!("request is not JSON: {e}"))?;
        let version = doc
            .get("v")
            .and_then(Json::as_num)
            .ok_or("request without a version")?;
        if version != f64::from(SCHEMA_VERSION) {
            return Err(format!(
                "protocol version {version} (this server speaks {SCHEMA_VERSION})"
            ));
        }
        match doc.get("cmd").and_then(Json::as_str) {
            Some("run") => {}
            other => return Err(format!("unknown command {other:?}")),
        }
        let figure = doc
            .get("figure")
            .and_then(Json::as_str)
            .ok_or("run request without a figure")?
            .to_string();
        let quick = doc.get("quick").and_then(Json::as_bool).unwrap_or(false);
        let filter = doc.get("filter").and_then(Json::as_str).map(str::to_string);
        let fault = match doc.get("fault_seed").and_then(Json::as_num) {
            Some(seed) => {
                let mut spec = FaultSpec::new(seed as u64);
                if let Some(h) = doc.get("fault_horizon").and_then(Json::as_num) {
                    if h < 1.0 {
                        return Err("fault_horizon must be nonzero".into());
                    }
                    spec.horizon = h as u64;
                }
                Some(spec)
            }
            None => None,
        };
        let timeout_ms = doc
            .get("timeout_ms")
            .and_then(Json::as_num)
            .map(|t| t as u64);
        Ok(Job {
            figure,
            quick,
            filter,
            fault,
            timeout_ms,
        })
    }
}

/// One server→client event, the parsed form of a response line.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// The job was accepted; output follows.
    Start {
        /// Canonical figure id (prefixes are resolved server-side).
        figure: String,
        /// The job's cache key, as 16 hex digits.
        key: String,
        /// True when the whole result replays from the cache.
        cached: bool,
        /// True when this request attached to an identical in-flight
        /// execution instead of starting its own.
        coalesced: bool,
    },
    /// One line of figure output, in emission order.
    Line(Line),
    /// The run completed; this is the final event of a success.
    Done {
        /// Whether the result came from the cache.
        cached: bool,
        /// How many output lines preceded this event.
        lines: u64,
    },
    /// The run failed; this is the final event of a failure.
    Error {
        /// Typed code: `bad_request`, `busy`, `timeout`, or `failed`.
        code: String,
        /// Human-readable detail.
        message: String,
    },
}

impl Event {
    /// Renders the event as a response line (no trailing newline).
    pub fn render(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj();
        match self {
            Event::Start {
                figure,
                key,
                cached,
                coalesced,
            } => {
                w.key("event").str("start");
                w.key("figure").str(figure);
                w.key("key").str(key);
                w.key("cached").bool(*cached);
                w.key("coalesced").bool(*coalesced);
            }
            Event::Line(line) => {
                w.key("event").str("line");
                w.key("stream")
                    .str(if line.is_out() { "out" } else { "progress" });
                w.key("text").str(line.text());
            }
            Event::Done { cached, lines } => {
                w.key("event").str("done");
                w.key("cached").bool(*cached);
                w.key("lines").u64(*lines);
            }
            Event::Error { code, message } => {
                w.key("event").str("error");
                w.key("code").str(code);
                w.key("message").str(message);
            }
        }
        w.end_obj();
        w.finish()
    }

    /// Parses a response line.
    ///
    /// # Errors
    /// Malformed JSON and unknown or incomplete events are errors.
    pub fn parse(line: &str) -> Result<Event, String> {
        let doc = parse(line).map_err(|e| format!("response is not JSON: {e}"))?;
        let kind = doc
            .get("event")
            .and_then(Json::as_str)
            .ok_or("response without an event kind")?;
        let str_field = |k: &str| {
            doc.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("{kind} event without {k:?}"))
        };
        let bool_field = |k: &str| {
            doc.get(k)
                .and_then(Json::as_bool)
                .ok_or_else(|| format!("{kind} event without {k:?}"))
        };
        match kind {
            "start" => Ok(Event::Start {
                figure: str_field("figure")?,
                key: str_field("key")?,
                cached: bool_field("cached")?,
                coalesced: bool_field("coalesced")?,
            }),
            "line" => {
                let text = str_field("text")?;
                match doc.get("stream").and_then(Json::as_str) {
                    Some("out") => Ok(Event::Line(Line::Out(text))),
                    Some("progress") => Ok(Event::Line(Line::Progress(text))),
                    other => Err(format!("line event with unknown stream {other:?}")),
                }
            }
            "done" => Ok(Event::Done {
                cached: bool_field("cached")?,
                lines: doc
                    .get("lines")
                    .and_then(Json::as_num)
                    .ok_or("done event without \"lines\"")? as u64,
            }),
            "error" => Ok(Event::Error {
                code: str_field("code")?,
                message: str_field("message")?,
            }),
            other => Err(format!("unknown event kind {other:?}")),
        }
    }
}

/// Renders a cache key as the 16-hex-digit wire form.
pub fn key_hex(key: u64) -> String {
    format!("{key:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let mut job = Job::new("fig05_phi");
        job.quick = true;
        job.filter = Some("levi \"x\"".into());
        job.fault = Some(FaultSpec {
            seed: 7,
            horizon: 50_000,
        });
        job.timeout_ms = Some(1500);
        let line = job.request_line();
        let back = Job::parse_request(&line).expect("round trips");
        assert_eq!(back.canon(), job.canon());
        assert_eq!(back.timeout_ms, Some(1500));

        let plain = Job::parse_request(&Job::new("table04_area").request_line()).unwrap();
        assert!(!plain.quick && plain.filter.is_none() && plain.fault.is_none());
        assert_eq!(plain.timeout_ms, None);
    }

    #[test]
    fn bad_requests_are_typed_errors() {
        assert!(Job::parse_request("not json").is_err());
        assert!(
            Job::parse_request("{\"cmd\":\"run\"}").is_err(),
            "no version"
        );
        assert!(
            Job::parse_request("{\"v\":99,\"cmd\":\"run\",\"figure\":\"f\"}")
                .unwrap_err()
                .contains("version"),
        );
        assert!(Job::parse_request("{\"v\":1,\"cmd\":\"stop\"}").is_err());
        assert!(
            Job::parse_request("{\"v\":1,\"cmd\":\"run\"}").is_err(),
            "no figure"
        );
    }

    #[test]
    fn canon_identifies_jobs_but_ignores_timeout() {
        let a = Job::new("fig05_phi");
        let mut b = Job::new("fig05_phi");
        b.timeout_ms = Some(10);
        assert_eq!(a.canon(), b.canon(), "patience is not identity");
        let mut c = Job::new("fig05_phi");
        c.quick = true;
        assert_ne!(a.canon(), c.canon());
        let mut d = Job::new("fig05_phi");
        d.filter = Some("ideal".into());
        assert_ne!(a.canon(), d.canon());
    }

    #[test]
    fn cache_key_tracks_figure_and_scale() {
        // Workload-less figures key on schema + canon + config digest
        // only, so they are fast to compute in tests.
        let area = Job::new("table04_area").cache_key().expect("known figure");
        let cfg = Job::new("table05_config").cache_key().unwrap();
        assert_ne!(area, cfg, "different figures, different addresses");
        let mut quick = Job::new("table04_area");
        quick.quick = true;
        assert_ne!(area, quick.cache_key().unwrap(), "scale is identity");
        assert_eq!(
            area,
            Job::new("table04_area").cache_key().unwrap(),
            "the key is a pure function of the job"
        );
        assert!(Job::new("nope").cache_key().is_err());
    }

    #[test]
    fn events_round_trip() {
        let events = [
            Event::Start {
                figure: "fig05_phi".into(),
                key: key_hex(0xdead_beef),
                cached: false,
                coalesced: true,
            },
            Event::Line(Line::Out("variant  cycles".into())),
            Event::Line(Line::Progress("  ran Baseline".into())),
            Event::Done {
                cached: true,
                lines: 17,
            },
            Event::Error {
                code: "busy".into(),
                message: "queue full (depth 8)".into(),
            },
        ];
        for e in events {
            let line = e.render();
            assert_eq!(Event::parse(&line).expect("round trips"), e, "{line}");
        }
        assert!(Event::parse("{\"event\":\"nope\"}").is_err());
        assert!(Event::parse("{\"event\":\"line\",\"text\":\"x\"}").is_err());
    }

    #[test]
    fn key_hex_is_16_digits() {
        assert_eq!(key_hex(0xab), "00000000000000ab");
    }
}
