//! Fig. 18 — hash-table lookups across object sizes (24/64/128 B).
//!
//! Paper: Leviathan up to 2.0×, −77% energy; without padding 24 B drops
//! to 1.5×; without LLC mapping 128 B drops to 0.91× (below baseline).

use levi_workloads::hashtable::{HashtableWorkload, HtScale, HtVariant};
use levi_workloads::{RunMetrics, Workload};

use crate::runner::{Figure, RunCtx};
use crate::{header, table_report, Sweep};

/// The figure descriptor.
pub const FIG: Figure = Figure {
    id: "fig18_hashtable",
    about: "hash-table lookups across 24/64/128 B nodes + layout ablations (paper Fig. 18)",
    workloads: &["hashtable"],
    run,
};

fn run(ctx: &RunCtx) {
    header(
        "Fig. 18 — hash-table lookups (32 nodes/bucket, uniform keys)",
        "per node size: Baseline vs Leviathan vs layout ablations",
    );
    let paper: &[(u64, f64, f64, &str)] = &[
        (24, 2.0, 1.5, "w/o padding: 1.5x (paper)"),
        (64, 1.9, f64::NAN, ""),
        (128, 1.8, 0.91, "w/o LLC mapping: 0.91x (paper)"),
    ];

    // Every (node size, variant) pair is an independent simulation, so
    // the whole figure fans out as one flat sweep; results come back in
    // declaration order, which the per-size loop below relies on.
    let w = &HashtableWorkload;
    let scale_for = |size: u64| {
        if ctx.quick {
            HtScale::test(size)
        } else {
            HtScale::paper(size)
        }
    };
    let mut jobs: Vec<(&str, (HtScale, HtVariant))> = Vec::new();
    for &(size, _, _, _) in paper {
        let s = scale_for(size);
        jobs.push(("base", (s.clone(), HtVariant::Baseline)));
        jobs.push(("lev", (s.clone(), HtVariant::Leviathan)));
        jobs.push(("ideal", (s.clone(), HtVariant::Ideal)));
        match size {
            24 => jobs.push(("w/o padding", (s, HtVariant::NoPadding))),
            128 => jobs.push(("w/o mapping", (s, HtVariant::NoMapping))),
            _ => {}
        }
    }
    let env = &ctx.env;
    let mut runs = Sweep::new()
        .variants(jobs.iter().map(|(label, job)| (*label, job)))
        .run(|label, job| {
            let (scale, v) = (&job.0, job.1);
            let o = w.run(v, scale, &(), env).expect_done(label);
            assert_eq!(
                o.checksum,
                w.golden(v, scale, &()),
                "{label} diverged from the golden model"
            );
            o
        })
        .into_iter();

    let mut rows = Vec::new();
    for &(size, paper_lev, paper_ablation, _) in paper {
        let base = runs.next().unwrap().1;
        let lev = runs.next().unwrap().1;
        let ideal = runs.next().unwrap().1;
        crate::progressln!("  ran size {size}B base/lev/ideal");
        let ablation = match size {
            24 | 128 => runs.next(),
            _ => None,
        };
        let s = |m: &RunMetrics| base.metrics.cycles as f64 / m.cycles as f64;
        let e = |m: &RunMetrics| m.energy.relative_to(&base.metrics.energy);
        rows.push(vec![
            format!("{size} B"),
            format!("{:.2}x", s(&lev.metrics)),
            format!("{paper_lev:.2}x"),
            format!("{:.0}%", e(&lev.metrics) * 100.0),
            ablation
                .as_ref()
                .map_or("-".into(), |(n, r)| format!("{n}: {:.2}x", s(&r.metrics))),
            if paper_ablation.is_nan() {
                "-".into()
            } else {
                format!("{paper_ablation:.2}x")
            },
            format!("{:.2}x", s(&ideal.metrics)),
        ]);
    }
    table_report(
        "fig18_hashtable",
        &[
            "node",
            "Leviathan",
            "(paper)",
            "energy",
            "ablation",
            "(paper)",
            "Ideal",
        ],
        &rows,
    );
    crate::outln!();
    crate::outln!("Paper: up to 2.0x speedup, up to 77% energy savings; padding and");
    crate::outln!("LLC object mapping are both required for cross-size robustness.");
}
