//! Fig. 5 — PHI: PageRank commutative scatter-updates.
//!
//! Paper: Leviathan 3.7×, tākō Relax 3.1×, tākō Fence 1.4×; Leviathan
//! −22% energy, within 1.3% of Ideal; 40% less NoC traffic than tākō.

use levi_bench::{header, quick_mode, report, Row, Sweep};
use levi_workloads::phi::{phi_graph, run_phi_on, PhiScale, PhiVariant};

fn main() {
    let mut scale = PhiScale::paper();
    if quick_mode() {
        scale = PhiScale::test();
    }
    header(
        "Fig. 5 — PHI (push PageRank, commutative scatter-updates)",
        &format!(
            "graph: {} vertices, ~{} edges (power-law in-degree), {} tiles, cache/{}x",
            scale.vertices,
            scale.vertices * scale.avg_degree,
            scale.tiles,
            scale.cache_factor
        ),
    );

    let graph = phi_graph(&scale);
    let results: Vec<_> = Sweep::new()
        .variants(PhiVariant::all().iter().map(|&v| (v.label(), v)))
        .run(|_, &v| run_phi_on(v, &scale, &graph))
        .into_iter()
        .map(|(label, r)| {
            eprintln!("  ran {:<12} {:>12} cycles", label, r.metrics.cycles);
            r
        })
        .collect();

    // Cross-variant validation: identical rank vectors.
    for r in &results {
        assert_eq!(
            r.rank_checksum, results[0].rank_checksum,
            "variant {} diverged functionally",
            r.metrics.label
        );
        assert_eq!(r.leftover_deltas, 0, "unapplied deltas after flush");
    }

    let paper_speedup = [1.0, 1.4, 3.1, 3.7, 3.75];
    let paper_energy = [1.0, 0.92, 0.88, 0.78, 0.77];
    let rows: Vec<Row> = results
        .iter()
        .zip(paper_speedup.iter().zip(paper_energy.iter()))
        .map(|(r, (&ps, &pe))| Row {
            label: &r.metrics.label,
            metrics: &r.metrics,
            paper_speedup: Some(ps),
            paper_energy: Some(pe),
        })
        .collect();
    report("fig05_phi", &rows);

    // Mechanism breakdown (Sec. IV-D).
    println!();
    println!("mechanisms:");
    let tako = &results[2].metrics.stats; // tako Relax
    let lev = &results[3].metrics.stats;
    let base = &results[0].metrics.stats;
    println!(
        "  fences:        baseline {:>9}   leviathan {:>9}  (offload eliminates fences)",
        base.fences, lev.fences
    );
    println!(
        "  line ping-pong: baseline {:>8}   leviathan {:>9}  (ownership transfers)",
        base.ownership_transfers, lev.ownership_transfers
    );
    let noc_cut = 1.0 - lev.noc_flit_hops as f64 / tako.noc_flit_hops as f64;
    println!(
        "  NoC traffic vs tako: -{:.0}%  (paper: -40%)",
        noc_cut * 100.0
    );
    let ideal_gap = results[3].metrics.cycles as f64 / results[4].metrics.cycles as f64 - 1.0;
    println!(
        "  gap to idealized engine: {:.1}%  (paper: 1.3%)",
        ideal_gap * 100.0
    );
}
