//! Thin wrapper: `cargo bench --bench fig23_stream_buffer` dispatches to the `fig23_stream_buffer`
//! descriptor in the unified figure registry (`levi_bench::figures`),
//! which `levi-bench run fig23_stream_buffer` executes identically.

fn main() {
    levi_bench::runner::bench_main("fig23_stream_buffer");
}
