//! Ablation — the memory-controller FIFO line cache (DESIGN.md §4).
//!
//! Leviathan stores objects compacted in DRAM, so consecutive cache lines
//! often map into one DRAM line; the small per-controller FIFO cache
//! absorbs the repeats (paper Sec. VI-A3: "can reduce DRAM accesses by up
//! to ≈3x"). Measured on the 24 B-node hash table, whose nodes are padded
//! 32 B in cache and packed 24 B in DRAM.

use levi_bench::{header, quick_mode, table};
use levi_workloads::hashtable::{HtScale, HtVariant};

fn main() {
    header(
        "Ablation — memory-controller FIFO cache for compacted DRAM",
        "paper: the 32-entry FIFO cache absorbs split-line refetches (up to ~3x)",
    );
    let mut scale = if quick_mode() {
        HtScale::test(24)
    } else {
        HtScale::paper(24)
    };
    // Grow the table past the LLC so lookups actually reach DRAM.
    scale = scale.with_table_bytes(if quick_mode() { 2 << 20 } else { 32 << 20 });

    let mut rows = Vec::new();
    for (name, fifo_lines) in [("with FIFO cache (32)", 32u32), ("without FIFO cache", 0)] {
        // run_hashtable_cfg lets us pin the LLC; the FIFO size needs a
        // config override, threaded through the machine config.
        let r = run_with_fifo(&scale, fifo_lines);
        eprintln!("  ran {name}");
        rows.push(vec![
            name.to_string(),
            r.metrics.cycles.to_string(),
            r.metrics.stats.dram_accesses.to_string(),
            r.metrics.stats.mc_cache_hits.to_string(),
        ]);
    }
    table(&["config", "cycles", "DRAM accesses", "FIFO hits"], &rows);
    println!();
    println!("DRAM accesses avoided = FIFO hits; disabling the cache converts");
    println!("them back into DRAM traffic on the compacted node array.");
}

fn run_with_fifo(scale: &HtScale, fifo_lines: u32) -> levi_workloads::hashtable::HtResult {
    // Thread the FIFO size through an env-var-free path: temporarily
    // adjust the default config via the workload's cfg hook.
    levi_workloads::hashtable::run_hashtable_with(HtVariant::Leviathan, scale, |cfg| {
        cfg.machine.mem.fifo_cache_lines = fifo_lines;
    })
}
