//! Substrate microkernels: small simulated programs that isolate one
//! mechanism each — streaming bandwidth (Scan), dependent load latency
//! (PtrChase), and the invoke path (InvokeAdd).
//!
//! Unlike the wall-clock harness microbenchmarks (`micro_substrate`),
//! these run on the timed simulator with host golden models, so they join
//! the [`crate::harness::REGISTRY`] and the differential tests like any
//! case study: a regression in the core pipeline, the cache walk, or the
//! task-offload scheduler shows up as a cycle or checksum drift here
//! before it muddies the full figures.

use std::sync::Arc;

use levi_isa::{ActionId, Location, MemWidth, ProgramBuilder, Reg, RmwOp};
use leviathan::{System, SystemConfig};

use crate::harness::{RunEnv, RunOutcome, RunStatus, ScaleKind, Workload};
use crate::metrics::RunMetrics;
use crate::rng::SmallRng;

/// Microkernel under measurement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MicroVariant {
    /// Every tile sums a disjoint stride-64 slice of a large array.
    Scan,
    /// One tile follows a seeded pointer cycle (dependent loads).
    PtrChase,
    /// Every tile fire-and-forget invokes an RMW task at remote lines.
    InvokeAdd,
}

impl MicroVariant {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            MicroVariant::Scan => "Scan",
            MicroVariant::PtrChase => "PtrChase",
            MicroVariant::InvokeAdd => "InvokeAdd",
        }
    }

    /// All variants in presentation order.
    pub fn all() -> [MicroVariant; 3] {
        [
            MicroVariant::Scan,
            MicroVariant::PtrChase,
            MicroVariant::InvokeAdd,
        ]
    }
}

/// Scale knobs.
#[derive(Clone, Debug)]
pub struct MicroScale {
    /// Scan: lines summed per tile.
    pub lines_per_tile: u64,
    /// PtrChase: nodes in the pointer cycle.
    pub chase_nodes: u64,
    /// PtrChase: hops followed.
    pub chase_hops: u64,
    /// InvokeAdd: invokes issued per tile.
    pub invokes_per_tile: u64,
    /// InvokeAdd: counter lines the invokes scatter over.
    pub counters: u64,
    /// Tiles.
    pub tiles: u32,
    /// RNG seed (fill values and the chase permutation).
    pub seed: u64,
}

impl MicroScale {
    /// The benchmark scale.
    pub fn paper() -> Self {
        MicroScale {
            lines_per_tile: 2048,
            chase_nodes: 4096,
            chase_hops: 8192,
            invokes_per_tile: 1024,
            counters: 64,
            tiles: 16,
            seed: 0x5EED,
        }
    }

    /// Tiny scale for unit tests.
    pub fn test() -> Self {
        MicroScale {
            lines_per_tile: 128,
            chase_nodes: 256,
            chase_hops: 512,
            invokes_per_tile: 128,
            counters: 64,
            tiles: 4,
            seed: 0x5EED,
        }
    }
}

/// Result of one microkernel run.
#[derive(Clone, Debug)]
pub struct MicroResult {
    /// Measured metrics.
    pub metrics: RunMetrics,
    /// Kernel checksum (see [`golden_checksum`]).
    pub checksum: u64,
}

/// The seeded fill value of scan line `j`.
fn scan_value(j: u64, seed: u64) -> u64 {
    j.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(seed)
}

/// The chase cycle as `next[i]` over `0..nodes` (one full cycle).
fn chase_cycle(scale: &MicroScale) -> Vec<u32> {
    let n = scale.chase_nodes as u32;
    assert!(n >= 2, "a pointer cycle needs at least two nodes");
    let mut order: Vec<u32> = (1..n).collect();
    let mut rng = SmallRng::seed_from_u64(scale.seed);
    rng.shuffle(&mut order);
    let mut next = vec![0u32; n as usize];
    let mut cur = 0u32;
    for &i in &order {
        next[cur as usize] = i;
        cur = i;
    }
    next[cur as usize] = 0;
    next
}

/// Host golden model for each kernel: Scan = wrapping sum of the fill
/// values; PtrChase = the node index reached after `chase_hops` hops;
/// InvokeAdd = the total amount added across all counters.
pub fn golden_checksum(variant: MicroVariant, scale: &MicroScale) -> u64 {
    match variant {
        MicroVariant::Scan => {
            let total = scale.lines_per_tile * scale.tiles as u64;
            (0..total).fold(0u64, |a, j| a.wrapping_add(scan_value(j, scale.seed)))
        }
        MicroVariant::PtrChase => {
            let next = chase_cycle(scale);
            let mut cur = 0u32;
            for _ in 0..scale.chase_hops {
                cur = next[cur as usize];
            }
            cur as u64
        }
        MicroVariant::InvokeAdd => {
            let per_thread: u64 = (0..scale.invokes_per_tile).map(|i| (i & 7) + 1).sum();
            per_thread * scale.tiles as u64
        }
    }
}

/// Runs one microkernel.
pub fn run_micro(variant: MicroVariant, scale: &MicroScale) -> MicroResult {
    run_micro_with(variant, scale, |_| {})
}

/// Runs one microkernel with arbitrary configuration customization (the
/// unified harness injects fault plans and watchdogs through this hook).
pub fn run_micro_with(
    variant: MicroVariant,
    scale: &MicroScale,
    customize: impl FnOnce(&mut SystemConfig),
) -> MicroResult {
    let mut cfg = SystemConfig::with_tiles(scale.tiles);
    customize(&mut cfg);
    let mut sys = System::try_new(cfg).expect("micro system config is valid");
    let checksum = match variant {
        MicroVariant::Scan => run_scan(&mut sys, scale),
        MicroVariant::PtrChase => run_chase(&mut sys, scale),
        MicroVariant::InvokeAdd => run_invoke_add(&mut sys, scale),
    };
    MicroResult {
        metrics: RunMetrics::capture(variant.label(), &sys),
        checksum,
    }
}

fn run_scan(sys: &mut System, scale: &MicroScale) -> u64 {
    let total = scale.lines_per_tile * scale.tiles as u64;
    let base = sys.alloc_raw(64 * total, 64);
    for j in 0..total {
        sys.write_u64(base + 64 * j, scan_value(j, scale.seed));
    }
    let mut pb = ProgramBuilder::new();
    let scan = {
        // r0 = slice base, r1 = line count, r2 = result slot.
        let mut f = pb.function("scan");
        let (p, n, result) = (Reg(0), Reg(1), Reg(2));
        let (i, v, acc) = (Reg(3), Reg(4), Reg(5));
        f.imm(i, 0).imm(acc, 0);
        let top = f.label();
        let out = f.label();
        f.bind(top);
        f.bge_u(i, n, out);
        f.ld8(v, p, 0);
        f.add(acc, acc, v);
        f.addi(p, p, 64);
        f.addi(i, i, 1);
        f.jmp(top);
        f.bind(out);
        f.st8(result, 0, acc);
        f.halt();
        f.finish()
    };
    let prog = Arc::new(pb.finish().expect("scan program validates"));
    let results = sys.alloc_raw(8 * scale.tiles as u64, 64);
    for t in 0..scale.tiles {
        let slice = base + 64 * scale.lines_per_tile * t as u64;
        sys.spawn_thread(
            t,
            &prog,
            scan,
            &[slice, scale.lines_per_tile, results + 8 * t as u64],
        )
        .unwrap();
    }
    sys.run().expect("scan kernel deadlocked");
    (0..scale.tiles).fold(0u64, |a, t| {
        a.wrapping_add(sys.read_u64(results + 8 * t as u64))
    })
}

fn run_chase(sys: &mut System, scale: &MicroScale) -> u64 {
    let next = chase_cycle(scale);
    let base = sys.alloc_raw(64 * scale.chase_nodes, 64);
    for (i, &nx) in next.iter().enumerate() {
        sys.write_u64(base + 64 * i as u64, base + 64 * nx as u64);
    }
    let mut pb = ProgramBuilder::new();
    let chase = {
        // r0 = start node, r1 = hops, r2 = result slot.
        let mut f = pb.function("chase");
        let (p, n, result) = (Reg(0), Reg(1), Reg(2));
        let i = Reg(3);
        f.imm(i, 0);
        let top = f.label();
        let out = f.label();
        f.bind(top);
        f.bge_u(i, n, out);
        f.ld8(p, p, 0);
        f.addi(i, i, 1);
        f.jmp(top);
        f.bind(out);
        f.st8(result, 0, p);
        f.halt();
        f.finish()
    };
    let prog = Arc::new(pb.finish().expect("chase program validates"));
    let result = sys.alloc_raw(8, 64);
    sys.spawn_thread(0, &prog, chase, &[base, scale.chase_hops, result])
        .unwrap();
    sys.run().expect("chase kernel deadlocked");
    (sys.read_u64(result) - base) / 64
}

fn run_invoke_add(sys: &mut System, scale: &MicroScale) -> u64 {
    let counters = sys.alloc_raw(64 * scale.counters, 64);
    let mut pb = ProgramBuilder::new();
    // Offloaded RMW task: r0 = counter line, r1 = amount.
    let rmw_task = {
        let mut f = pb.function("rmw_task");
        let (actor, amt, old) = (Reg(0), Reg(1), Reg(2));
        f.rmw_relaxed(RmwOp::Add, old, actor, amt, MemWidth::B8);
        f.halt();
        f.finish()
    };
    let driver = {
        // r0 = counters base, r1 = invokes, r2 = t*13, r3 = counter count.
        let mut f = pb.function("invoke_driver");
        let (base, n, salt, nc) = (Reg(0), Reg(1), Reg(2), Reg(3));
        let (i, k, addr, amt) = (Reg(4), Reg(5), Reg(6), Reg(7));
        f.imm(i, 0);
        let top = f.label();
        let out = f.label();
        f.bind(top);
        f.bge_u(i, n, out);
        f.muli(k, i, 7);
        f.add(k, k, salt);
        f.remu(k, k, nc);
        f.muli(addr, k, 64);
        f.add(addr, addr, base);
        f.andi(amt, i, 7);
        f.addi(amt, amt, 1);
        f.invoke(addr, ActionId(0), &[amt], Location::Remote);
        f.addi(i, i, 1);
        f.jmp(top);
        f.bind(out);
        f.halt();
        f.finish()
    };
    let prog = Arc::new(pb.finish().expect("invoke programs validate"));
    let action = sys.register_action(&prog, rmw_task);
    assert_eq!(action, ActionId(0));
    for t in 0..scale.tiles {
        sys.spawn_thread(
            t,
            &prog,
            driver,
            &[
                counters,
                scale.invokes_per_tile,
                t as u64 * 13,
                scale.counters,
            ],
        )
        .unwrap();
    }
    sys.run().expect("invoke-add kernel deadlocked");
    (0..scale.counters).fold(0u64, |a, c| a.wrapping_add(sys.read_u64(counters + 64 * c)))
}

/// Registry entry for the substrate microkernels (see [`crate::harness`]).
pub struct MicroWorkload;

impl Workload for MicroWorkload {
    type Variant = MicroVariant;
    type Scale = MicroScale;
    type Input = ();

    fn name(&self) -> &'static str {
        "micro"
    }

    fn variants(&self) -> Vec<(&'static str, MicroVariant)> {
        MicroVariant::all()
            .iter()
            .map(|&v| (v.label(), v))
            .collect()
    }

    fn scale(&self, kind: ScaleKind) -> MicroScale {
        match kind {
            ScaleKind::Paper => MicroScale::paper(),
            ScaleKind::Test | ScaleKind::Quick => MicroScale::test(),
        }
    }

    fn build_input(&self, _scale: &MicroScale) {}

    fn describe(&self, scale: &MicroScale) -> String {
        format!(
            "{} scan lines/tile, {}-node chase x {} hops, {} invokes/tile, {} tiles",
            scale.lines_per_tile,
            scale.chase_nodes,
            scale.chase_hops,
            scale.invokes_per_tile,
            scale.tiles
        )
    }

    fn run(
        &self,
        variant: MicroVariant,
        scale: &MicroScale,
        _input: &(),
        env: &RunEnv,
    ) -> RunStatus {
        let r = run_micro_with(variant, scale, |cfg| env.customize(cfg));
        RunStatus::Done(Box::new(RunOutcome::new(r.metrics, r.checksum)))
    }

    fn golden(&self, variant: MicroVariant, scale: &MicroScale, _input: &()) -> u64 {
        golden_checksum(variant, scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_match_their_golden_models() {
        let scale = MicroScale::test();
        for v in MicroVariant::all() {
            let r = run_micro(v, &scale);
            assert_eq!(
                r.checksum,
                golden_checksum(v, &scale),
                "{} diverged",
                v.label()
            );
            assert!(r.metrics.cycles > 0);
        }
    }

    #[test]
    fn chase_cycle_visits_every_node() {
        let scale = MicroScale::test();
        let next = chase_cycle(&scale);
        let mut cur = 0u32;
        let mut seen = vec![false; next.len()];
        for _ in 0..next.len() {
            assert!(!seen[cur as usize], "cycle revisited {cur} early");
            seen[cur as usize] = true;
            cur = next[cur as usize];
        }
        assert_eq!(cur, 0, "permutation must close into one cycle");
        assert!(seen.iter().all(|&s| s));
    }
}
