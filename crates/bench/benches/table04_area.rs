//! Thin wrapper: `cargo bench --bench table04_area` dispatches to the `table04_area`
//! descriptor in the unified figure registry (`levi_bench::figures`),
//! which `levi-bench run table04_area` executes identically.

fn main() {
    levi_bench::runner::bench_main("table04_area");
}
