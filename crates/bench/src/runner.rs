//! The unified figure runner: a registry of figure descriptors and the
//! shared machinery that drives [`levi_workloads::Workload`]s through
//! [`crate::Sweep`].
//!
//! Each figure of the paper's evaluation is one [`Figure`] descriptor in
//! [`crate::figures::ALL`]: a static id, a one-line summary, the registry
//! workloads it exercises, and a `run` function that prints the figure.
//! The `levi-bench` binary and the thin `cargo bench` wrappers both
//! dispatch through [`bench_main`] / [`run_figure`], so there is exactly
//! one implementation of every figure no matter how it is invoked.
//!
//! Shared plumbing lives here so descriptors stay declarative:
//!
//! * [`RunCtx`] — scale selection (`--quick`), variant filtering
//!   (`--filter`), and the [`RunEnv`] injected into every run
//!   (`--fault-plan`).
//! * [`sweep_variants`] / [`sweep_prepared`] — run a workload's variants
//!   through a parallel [`crate::Sweep`], print per-run progress, and
//!   check every supported variant against its golden model.
//! * [`report_figure`] — join measured outcomes with the paper's numbers
//!   by label and emit the standard speedup/energy report.

use levi_workloads::harness::{
    DynWorkload, PreparedRun, RunEnv, RunOutcome, RunStatus, ScaleKind, Workload,
};

use crate::{report, Row, Sweep};

/// Per-invocation context threaded into every figure's `run` function.
#[derive(Clone, Debug, Default)]
pub struct RunCtx {
    /// Run at reduced scale (`--quick` / `LEVI_BENCH_QUICK`).
    pub quick: bool,
    /// Case-insensitive substring filter on variant labels; the baseline
    /// (first) variant always runs so speedups stay well-defined.
    pub filter: Option<String>,
    /// Environment applied uniformly to every simulated run.
    pub env: RunEnv,
}

impl RunCtx {
    /// A context from the process environment, as the `cargo bench`
    /// wrappers use: `LEVI_BENCH_QUICK` selects quick scale,
    /// `LEVI_CHECKPOINT_EVERY` / `LEVI_SNAPSHOT_VERIFY` arm the snapshot
    /// hook, no filter, default environment otherwise.
    pub fn from_env() -> Self {
        let mut env = RunEnv::default();
        if let Ok(v) = std::env::var("LEVI_CHECKPOINT_EVERY") {
            env.checkpoint_every = v.parse().unwrap_or_else(|_| {
                panic!("LEVI_CHECKPOINT_EVERY must be a cycle count, got {v:?}")
            });
        }
        env.snapshot_verify = std::env::var("LEVI_SNAPSHOT_VERIFY").is_ok_and(|v| v != "0");
        RunCtx {
            quick: crate::quick_mode(),
            env,
            ..RunCtx::default()
        }
    }

    /// The scale kind this context selects.
    pub fn kind(&self) -> ScaleKind {
        if self.quick {
            ScaleKind::Quick
        } else {
            ScaleKind::Paper
        }
    }

    /// Whether the variant at `index` with display `label` should run.
    pub fn keeps(&self, index: usize, label: &str) -> bool {
        index == 0
            || match &self.filter {
                None => true,
                Some(f) => label.to_ascii_lowercase().contains(&f.to_ascii_lowercase()),
            }
    }
}

/// Labelled outcomes of one variant sweep, in presentation order.
/// Unsupported variants are absent (they printed their reason instead).
pub struct Outcomes {
    entries: Vec<(&'static str, RunOutcome)>,
}

impl Outcomes {
    /// The outcome for the variant labelled `label`, if it ran.
    pub fn get(&self, label: &str) -> Option<&RunOutcome> {
        self.entries
            .iter()
            .find(|(l, _)| *l == label)
            .map(|(_, o)| o)
    }

    /// Iterates `(label, outcome)` pairs in presentation order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &RunOutcome)> {
        self.entries.iter().map(|(l, o)| (*l, o))
    }

    /// How many variants actually ran.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no variant ran.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The shared journal-aware sweep path behind [`sweep_variants`] and
/// [`sweep_prepared`].
///
/// Labels already on record in the active run journal (see
/// [`crate::journal`]) are loaded instead of re-run; the rest execute
/// through [`Sweep::try_run`], so one panicking variant cannot abort its
/// siblings. Results merge back in presentation order. Every outcome —
/// resumed or fresh — is checked against the golden model (which also
/// catches a stale journal from an older build), and every fresh
/// completion is recorded in the journal *before* the deferred
/// panic-summary fires, so a crashed or partly-failed invocation can be
/// resumed without repeating its finished work.
fn journaled_sweep<F, G>(labels: Vec<&'static str>, run: F, check: G) -> Outcomes
where
    F: Fn(&'static str) -> RunStatus + Sync,
    G: Fn(&str) -> u64,
{
    let figure = std::env::var("LEVI_BENCH_FIGURE").unwrap_or_default();
    let sweep_idx = crate::journal::begin_sweep(&figure);

    let mut resumed: std::collections::HashMap<&'static str, RunOutcome> =
        std::collections::HashMap::new();
    let mut pending: Vec<&'static str> = Vec::new();
    for &label in &labels {
        match sweep_idx.and_then(|s| crate::journal::lookup(&figure, s, label)) {
            Some(o) => {
                resumed.insert(label, o);
            }
            None => pending.push(label),
        }
    }

    let mut runs: std::collections::HashMap<&'static str, Result<RunStatus, crate::VariantPanic>> =
        Sweep::new()
            .variants(pending.iter().map(|&l| (l, l)))
            .try_run(|_, &label| run(label))
            .into_iter()
            .collect();

    let mut entries = Vec::new();
    let mut failed: Vec<crate::VariantPanic> = Vec::new();
    for &label in &labels {
        if let Some(o) = resumed.remove(label) {
            eprintln!(
                "  journal {:<14} {:>12} cycles (resumed)",
                label, o.metrics.cycles
            );
            assert_eq!(
                o.checksum,
                check(label),
                "{label}: journaled outcome diverged from the golden model (stale journal?)"
            );
            emit_run_telemetry(label, &o.metrics.stats);
            entries.push((label, o));
            continue;
        }
        match runs.remove(label) {
            Some(Ok(RunStatus::Done(o))) => {
                eprintln!("  ran {:<18} {:>12} cycles", label, o.metrics.cycles);
                assert_eq!(
                    o.checksum,
                    check(label),
                    "{label} diverged from the golden model"
                );
                if let Some(s) = sweep_idx {
                    crate::journal::record(&figure, s, label, &o);
                }
                emit_run_telemetry(label, &o.metrics.stats);
                entries.push((label, *o));
            }
            Some(Ok(RunStatus::Unsupported(reason))) => {
                println!("{label:<22} UNSUPPORTED — {reason}");
            }
            Some(Err(p)) => failed.push(p),
            None => unreachable!("every label was partitioned into resumed or pending"),
        }
    }
    if !failed.is_empty() {
        let mut msg = format!("{} sweep variant(s) panicked:", failed.len());
        for p in &failed {
            msg.push_str(&format!("\n  {p}"));
        }
        panic!("{msg}");
    }
    Outcomes { entries }
}

/// Appends one run's registry dump to the `LEVI_TELEMETRY` file (no-op
/// when unset). The block's scope is `figure/label`, using the figure id
/// [`run_figure`] exported for the runs it drives.
fn emit_run_telemetry(label: &str, stats: &levi_sim::Stats) {
    if std::env::var("LEVI_TELEMETRY").is_err() {
        return;
    }
    let scope = match std::env::var("LEVI_BENCH_FIGURE") {
        Ok(fig) if !fig.is_empty() => format!("{fig}/{label}"),
        _ => label.to_string(),
    };
    crate::emit_telemetry_block(&levi_sim::Telemetry::new(stats).to_jsonl(&scope));
}

/// Runs the (filtered) variants of a typed workload at `scale` through a
/// parallel [`Sweep`], checking every supported variant against the
/// golden model. Figures that sweep scale knobs call [`Workload::run`]
/// directly instead; this helper covers the standard "all variants at one
/// scale" shape.
pub fn sweep_variants<W: Workload>(w: &W, scale: &W::Scale, ctx: &RunCtx) -> Outcomes {
    let input = w.build_input(scale);
    let variants: Vec<(&'static str, W::Variant)> = w
        .variants()
        .into_iter()
        .enumerate()
        .filter(|&(i, (label, _))| ctx.keeps(i, label))
        .map(|(_, pair)| pair)
        .collect();
    let env = &ctx.env;
    let input_ref = &input;
    let labels: Vec<&'static str> = variants.iter().map(|&(l, _)| l).collect();
    let variant_of = |label: &str| {
        variants
            .iter()
            .find(|(l, _)| *l == label)
            .expect("label came from this list")
            .1
    };
    journaled_sweep(
        labels,
        |label| w.run(variant_of(label), scale, input_ref, env),
        |label| w.golden(variant_of(label), scale, &input),
    )
}

/// Registry-path counterpart of [`sweep_variants`]: runs a
/// [`PreparedRun`]'s variants by label. This is how figures drive
/// workloads they only know by registry name.
pub fn sweep_prepared(w: &dyn DynWorkload, prepared: &dyn PreparedRun, ctx: &RunCtx) -> Outcomes {
    let labels: Vec<&'static str> = w
        .variant_labels()
        .into_iter()
        .enumerate()
        .filter(|&(i, label)| ctx.keeps(i, label))
        .map(|(_, label)| label)
        .collect();
    let env = &ctx.env;
    journaled_sweep(
        labels,
        |label| prepared.run(label, env),
        |label| prepared.golden(label),
    )
}

/// Emits the standard speedup/energy report for a variant sweep, joining
/// the paper's `(label, speedup, relative energy)` numbers by label.
/// Rows keep the sweep's presentation order; the first outcome is the
/// baseline.
pub fn report_figure(
    figure: &str,
    outcomes: &Outcomes,
    paper: &[(&str, Option<f64>, Option<f64>)],
) {
    let rows: Vec<Row<'_>> = outcomes
        .iter()
        .map(|(label, o)| {
            let (ps, pe) = paper
                .iter()
                .find(|(l, _, _)| *l == label)
                .map_or((None, None), |&(_, ps, pe)| (ps, pe));
            Row {
                label,
                metrics: &o.metrics,
                paper_speedup: ps,
                paper_energy: pe,
            }
        })
        .collect();
    report(figure, &rows);
}

/// One figure or table of the paper's evaluation.
pub struct Figure {
    /// Stable identifier (`fig05_phi`, `table04_area`, ...) — the name
    /// `levi-bench run` accepts and the `"figure"` key in report JSON.
    pub id: &'static str,
    /// One-line summary shown by `levi-bench list`.
    pub about: &'static str,
    /// Registry workloads this figure exercises (empty for figures that
    /// measure the substrate or print static configuration).
    pub workloads: &'static [&'static str],
    /// Prints the figure (and emits its report JSON) for a context.
    pub run: fn(&RunCtx),
}

/// Finds a figure by exact id, or by unique prefix.
pub fn find_figure(id: &str) -> Option<&'static Figure> {
    let all = crate::figures::ALL;
    if let Some(f) = all.iter().find(|f| f.id == id) {
        return Some(f);
    }
    let mut matches = all.iter().filter(|f| f.id.starts_with(id));
    match (matches.next(), matches.next()) {
        (Some(f), None) => Some(f),
        _ => None,
    }
}

/// Runs one figure under `ctx`. Exports the figure id as
/// `LEVI_BENCH_FIGURE` so telemetry blocks emitted by the runs it drives
/// carry a `figure/variant` scope (figures run sequentially; only their
/// inner sweeps fan out).
pub fn run_figure(fig: &Figure, ctx: &RunCtx) {
    std::env::set_var("LEVI_BENCH_FIGURE", fig.id);
    (fig.run)(ctx);
}

/// Entry point for the thin `cargo bench` wrappers: runs the named
/// figure with a [`RunCtx`] built from the environment, exactly as the
/// pre-refactor standalone bench binaries did.
///
/// # Panics
/// Panics if `id` names no registered figure.
pub fn bench_main(id: &str) {
    let fig = find_figure(id).unwrap_or_else(|| panic!("unknown figure {id:?}"));
    run_figure(fig, &RunCtx::from_env());
}

/// Renders the roll-up manifest emitted after `levi-bench run all`: which
/// figures ran, which registry workloads each exercises, and the full
/// registry, so report consumers can check coverage without compiling the
/// workspace.
pub fn manifest_json(quick: bool) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"manifest\":{{\"version\":1,\"quick\":{quick},\"figures\":["
    );
    for (i, f) in crate::figures::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"id\":\"{}\",\"workloads\":[", crate::escape(f.id));
        for (j, w) in f.workloads.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\"", crate::escape(w));
        }
        out.push_str("]}");
    }
    out.push_str("],\"workloads\":[");
    for (i, w) in levi_workloads::REGISTRY.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\"", crate::escape(w.name()));
    }
    out.push_str("]}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_ids_are_unique_and_prefix_resolvable() {
        let mut ids: Vec<_> = crate::figures::ALL.iter().map(|f| f.id).collect();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), before, "duplicate figure ids");
        assert!(find_figure("fig05_phi").is_some());
        assert_eq!(find_figure("fig05").unwrap().id, "fig05_phi");
        assert!(
            find_figure("fig2").is_none(),
            "ambiguous prefix must not resolve"
        );
        assert!(find_figure("nope").is_none());
    }

    #[test]
    fn every_registry_workload_is_covered_by_some_figure() {
        for w in levi_workloads::REGISTRY {
            assert!(
                crate::figures::ALL
                    .iter()
                    .any(|f| f.workloads.contains(&w.name())),
                "workload {} appears in no figure",
                w.name()
            );
        }
        for f in crate::figures::ALL {
            for w in f.workloads {
                assert!(
                    levi_workloads::harness::find_workload(w).is_some(),
                    "figure {} names unregistered workload {w}",
                    f.id
                );
            }
        }
    }

    #[test]
    fn manifest_lists_every_figure_and_workload() {
        let m = manifest_json(true);
        for f in crate::figures::ALL {
            assert!(m.contains(&format!("\"id\":\"{}\"", f.id)), "{m}");
        }
        for w in levi_workloads::REGISTRY {
            assert!(m.contains(&format!("\"{}\"", w.name())), "{m}");
        }
        assert_eq!(m.matches('{').count(), m.matches('}').count());
    }

    #[test]
    fn filter_keeps_the_baseline() {
        let ctx = RunCtx {
            filter: Some("leviathan".into()),
            ..RunCtx::default()
        };
        assert!(ctx.keeps(0, "Baseline"));
        assert!(ctx.keeps(3, "Leviathan"));
        assert!(ctx.keeps(4, "Leviathan (DYNAMIC)"));
        assert!(!ctx.keeps(2, "tako Relax"));
        assert!(RunCtx::default().keeps(2, "tako Relax"));
    }
}
