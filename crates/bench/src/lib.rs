//! Shared reporting utilities for the benchmark harness.
//!
//! Every bench target regenerates one table or figure of the paper's
//! evaluation and prints the measured values next to the paper's reported
//! numbers. We reproduce *shape* — who wins, by roughly what factor,
//! where crossovers fall — not absolute cycle counts (the substrate is a
//! from-scratch simulator, not the authors' testbed). See EXPERIMENTS.md
//! for the recorded comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io::Write as _;

use levi_sim::Histogram;
use levi_workloads::metrics::RunMetrics;

pub mod codec;
pub mod figures;
pub mod journal;
pub mod json;
pub mod micro_timers;
pub mod out;
pub mod perf_cli;
pub mod runner;
pub mod serve;

/// True when `LEVI_BENCH_QUICK` is set: benches drop to reduced scales
/// (useful for smoke-testing the harness).
pub fn quick_mode() -> bool {
    std::env::var("LEVI_BENCH_QUICK").is_ok()
}

/// True when `LEVI_SWEEP_SERIAL` is set: [`Sweep`] runs its variants on
/// the calling thread instead of fanning out. The output is byte-identical
/// either way; the switch exists for debugging and for comparing
/// wall-clock times.
pub fn sweep_serial() -> bool {
    std::env::var("LEVI_SWEEP_SERIAL").is_ok()
}

/// A deterministic parallel experiment driver.
///
/// A `Sweep` holds a list of *named variants* — typically workload-variant
/// enums or `SystemConfig`s — and runs one simulation per variant. Each
/// simulated run is a pure function of its configuration and seed (the
/// simulator shares no global state), so the variants fan out over
/// [`std::thread::scope`] and the results are collected **in declaration
/// order**: a parallel sweep prints byte-identical tables to a serial one,
/// just sooner. Run functions must therefore not print; keep per-run
/// logging in the closure's return value and emit it after [`Sweep::run`]
/// returns.
///
/// ```no_run
/// use levi_bench::Sweep;
/// let results = Sweep::new()
///     .variant("small", 4u32)
///     .variant("large", 64u32)
///     .run(|_, &tiles| tiles * 2);
/// assert_eq!(results, [("small", 8), ("large", 128)]);
/// ```
pub struct Sweep<'a, C> {
    variants: Vec<(&'a str, C)>,
}

impl<'a, C> Default for Sweep<'a, C> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'a, C> Sweep<'a, C> {
    /// An empty sweep.
    pub fn new() -> Self {
        Sweep {
            variants: Vec::new(),
        }
    }

    /// Appends one named variant. Results come back in the order the
    /// variants were declared, regardless of which finishes first.
    pub fn variant(mut self, name: &'a str, cfg: C) -> Self {
        self.variants.push((name, cfg));
        self
    }

    /// Appends variants from an iterator.
    pub fn variants(mut self, it: impl IntoIterator<Item = (&'a str, C)>) -> Self {
        self.variants.extend(it);
        self
    }

    /// Runs `f(name, cfg)` for every variant — concurrently unless
    /// `LEVI_SWEEP_SERIAL` is set or there is at most one variant — and
    /// returns `(name, result)` pairs in declaration order.
    ///
    /// # Panics
    /// Every variant runs to completion even if some panic; if any did,
    /// this panics afterwards with a summary naming each failed variant.
    /// Use [`Sweep::try_run`] to handle per-variant panics as values.
    pub fn run<R, F>(self, f: F) -> Vec<(&'a str, R)>
    where
        C: Sync,
        R: Send,
        F: Fn(&str, &C) -> R + Sync,
    {
        let mut ok = Vec::new();
        let mut failed: Vec<VariantPanic> = Vec::new();
        for (name, result) in self.try_run(f) {
            match result {
                Ok(r) => ok.push((name, r)),
                Err(p) => failed.push(p),
            }
        }
        if !failed.is_empty() {
            let mut msg = format!("{} sweep variant(s) panicked:", failed.len());
            for p in &failed {
                msg.push_str(&format!("\n  {p}"));
            }
            panic!("{msg}");
        }
        ok
    }

    /// Like [`Sweep::run`], but a panicking variant becomes an
    /// `Err(`[`VariantPanic`]`)` in its slot instead of aborting the
    /// sweep: one poisoned configuration cannot take down the other
    /// variants' (possibly hours of) completed work. Results stay in
    /// declaration order.
    pub fn try_run<R, F>(self, f: F) -> Vec<(&'a str, Result<R, VariantPanic>)>
    where
        C: Sync,
        R: Send,
        F: Fn(&str, &C) -> R + Sync,
    {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let guarded = |name: &str, cfg: &C| {
            catch_unwind(AssertUnwindSafe(|| f(name, cfg))).map_err(|p| VariantPanic {
                label: name.to_string(),
                message: panic_message(p.as_ref()),
            })
        };
        if sweep_serial() || self.variants.len() < 2 {
            return self
                .variants
                .iter()
                .map(|(name, cfg)| (*name, guarded(name, cfg)))
                .collect();
        }
        let guarded = &guarded;
        std::thread::scope(|s| {
            let handles: Vec<_> = self
                .variants
                .iter()
                .map(|(name, cfg)| (*name, s.spawn(move || guarded(name, cfg))))
                .collect();
            handles
                .into_iter()
                .map(|(name, h)| {
                    let result = match h.join() {
                        Ok(r) => r,
                        // The closure catches its own panics; a join error
                        // would mean the thread died some other way.
                        Err(p) => Err(VariantPanic {
                            label: name.to_string(),
                            message: panic_message(p.as_ref()),
                        }),
                    };
                    (name, result)
                })
                .collect()
        })
    }
}

/// A sweep variant whose run panicked (see [`Sweep::try_run`]).
#[derive(Clone, Debug)]
pub struct VariantPanic {
    /// The variant's label.
    pub label: String,
    /// The panic payload, rendered as text.
    pub message: String,
}

impl std::fmt::Display for VariantPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "variant {:?} panicked: {}", self.label, self.message)
    }
}

impl std::error::Error for VariantPanic {}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Prints a figure/table header (via the [`crate::out`] seam, like all
/// figure output, so `levi-bench serve` captures it byte-identically).
pub fn header(title: &str, description: &str) {
    crate::outln!();
    crate::outln!("==================================================================");
    crate::outln!("{title}");
    crate::outln!("{description}");
    crate::outln!("==================================================================");
}

/// One measured variant row against the baseline, with the paper's numbers.
pub struct Row<'a> {
    /// Variant label.
    pub label: &'a str,
    /// Measured metrics.
    pub metrics: &'a RunMetrics,
    /// The paper's speedup for this bar (None if not reported).
    pub paper_speedup: Option<f64>,
    /// The paper's relative energy (1.0 = baseline) if reported.
    pub paper_energy: Option<f64>,
}

/// Prints a speedup/energy comparison table. `rows\[0\]` is the baseline.
pub fn speedup_table(rows: &[Row<'_>]) {
    let base = rows[0].metrics;
    crate::outln!(
        "{:<22} {:>12} {:>9} {:>9} {:>10} {:>10}",
        "variant",
        "cycles",
        "speedup",
        "(paper)",
        "energy",
        "(paper)"
    );
    for r in rows {
        let speedup = base.cycles as f64 / r.metrics.cycles as f64;
        let energy = r.metrics.energy.relative_to(&base.energy);
        crate::outln!(
            "{:<22} {:>12} {:>8.2}x {:>9} {:>9.0}% {:>10}",
            r.label,
            r.metrics.cycles,
            speedup,
            r.paper_speedup
                .map_or_else(|| "-".into(), |s| format!("{s:.2}x")),
            energy * 100.0,
            r.paper_energy
                .map_or_else(|| "-".into(), |e| format!("{:.0}%", e * 100.0)),
        );
    }
}

/// Prints the speedup/energy table and, when `LEVI_BENCH_JSON=<path>` is
/// set, appends one machine-readable JSON line for the figure so the perf
/// trajectory across commits is diffable.
///
/// The JSON schema (one object per line, one line per figure run):
///
/// ```json
/// {"figure": "fig20_hats",
///  "rows": [{"label": "Baseline", "cycles": 1234, "speedup": 1.0,
///            "rel_energy": 1.0, "energy_uj": 5.6,
///            "invoke_rtt": {"count": 10, "p50": 32, "p90": 64, "p99": 64},
///            "load_to_use": {...}, "dram_queue": {...},
///            "stream_stall": {...}, "trace_dropped": 0}]}
/// ```
pub fn report(figure: &str, rows: &[Row<'_>]) {
    speedup_table(rows);
    emit_json_line(&figure_json(figure, rows));
}

/// Appends one line to the `LEVI_BENCH_JSON` report file, if the variable
/// is set (no-op otherwise). All machine-readable emission — figure rows,
/// table snapshots, the `all`-run manifest — funnels through here.
///
/// # Panics
/// Panics if the report file cannot be opened or written.
pub fn emit_json_line(json: &str) {
    let Ok(path) = std::env::var("LEVI_BENCH_JSON") else {
        return;
    };
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .unwrap_or_else(|e| panic!("LEVI_BENCH_JSON={path}: {e}"));
    writeln!(f, "{json}").expect("write bench JSON");
}

/// Appends one pre-rendered telemetry block (JSON lines, newline-
/// terminated) to the `LEVI_TELEMETRY` dump file, if the variable is set
/// (no-op otherwise). `levi-bench run --telemetry PATH` truncates the
/// file and sets the variable; every run's
/// [`levi_sim::Telemetry::to_jsonl`] block funnels through here.
///
/// # Panics
/// Panics if the dump file cannot be opened or written.
pub fn emit_telemetry_block(block: &str) {
    let Ok(path) = std::env::var("LEVI_TELEMETRY") else {
        return;
    };
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .unwrap_or_else(|e| panic!("LEVI_TELEMETRY={path}: {e}"));
    write!(f, "{block}").expect("write telemetry dump");
}

/// Renders one figure's rows as a single JSON object (no trailing newline).
pub fn figure_json(figure: &str, rows: &[Row<'_>]) -> String {
    let base = rows[0].metrics;
    let mut w = json::JsonWriter::new();
    w.begin_obj();
    w.key("figure").str(figure);
    w.key("rows").begin_arr();
    for r in rows {
        let speedup = base.cycles as f64 / r.metrics.cycles as f64;
        let energy = r.metrics.energy.relative_to(&base.energy);
        w.begin_obj();
        w.key("label").str(r.label);
        w.key("cycles").u64(r.metrics.cycles);
        w.key("speedup").fixed(speedup, 6);
        w.key("rel_energy").fixed(energy, 6);
        w.key("energy_uj").fixed(r.metrics.energy.total_uj(), 3);
        for (name, h) in [
            ("invoke_rtt", &r.metrics.stats.invoke_rtt),
            ("load_to_use", &r.metrics.stats.load_to_use),
            ("dram_queue", &r.metrics.stats.dram_queue),
            ("stream_stall", &r.metrics.stats.stream_stall),
        ] {
            w.key(name);
            hist_json(&mut w, h);
        }
        w.key("trace_dropped").u64(r.metrics.stats.trace.dropped());
        w.end_obj();
    }
    w.end_arr();
    w.end_obj();
    w.finish()
}

fn hist_json(w: &mut json::JsonWriter, h: &Histogram) {
    w.begin_obj();
    w.key("count").u64(h.count());
    w.key("p50").u64(h.p50());
    w.key("p90").u64(h.p90());
    w.key("p99").u64(h.p99());
    w.key("max").u64(h.max());
    w.end_obj();
}

/// Renders a generic column table as a single JSON object (no trailing
/// newline), mirroring [`figure_json`] for figures whose natural output is
/// a [`table`] rather than a speedup comparison:
///
/// ```json
/// {"figure": "fig22_invoke_buffer",
///  "table": {"headers": ["entries", ...], "rows": [["1", ...], ...]}}
/// ```
pub fn table_json(figure: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut w = json::JsonWriter::new();
    w.begin_obj();
    w.key("figure").str(figure);
    w.key("table").begin_obj();
    w.key("headers").begin_arr();
    for h in headers {
        w.str(h);
    }
    w.end_arr();
    w.key("rows").begin_arr();
    for row in rows {
        w.begin_arr();
        for cell in row {
            w.str(cell);
        }
        w.end_arr();
    }
    w.end_arr();
    w.end_obj();
    w.end_obj();
    w.finish()
}

/// Prints the table and, when `LEVI_BENCH_JSON` is set, appends its
/// [`table_json`] line — the table-shaped counterpart of [`report`].
pub fn table_report(figure: &str, headers: &[&str], rows: &[Vec<String>]) {
    table(headers, rows);
    emit_json_line(&table_json(figure, headers, rows));
}

/// Prints a generic column table.
pub fn table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut out = String::new();
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!("{:>w$}  ", c, w = widths[i]));
        }
        crate::outln!("{}", out.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Formats a ratio as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use leviathan::{System, SystemConfig};

    #[test]
    fn pct_formats() {
        assert_eq!(super::pct(0.064), "6.4%");
    }

    #[test]
    fn try_run_contains_panics_and_completes_the_other_variants() {
        let results = Sweep::new()
            .variant("ok-1", 1u32)
            .variant("boom", 2u32)
            .variant("ok-2", 3u32)
            .try_run(|name, &v| {
                assert!(name != "boom", "variant {v} is poisoned");
                v * 10
            });
        assert_eq!(results.len(), 3, "every variant reports, panicked or not");
        assert_eq!(results[0].0, "ok-1");
        assert_eq!(*results[0].1.as_ref().unwrap(), 10);
        let (name, err) = (&results[1].0, results[1].1.as_ref().unwrap_err());
        assert_eq!(*name, "boom");
        assert_eq!(err.label, "boom");
        assert!(
            err.message.contains("variant 2 is poisoned"),
            "payload text surfaces: {}",
            err.message
        );
        assert_eq!(results[2].0, "ok-2");
        assert_eq!(*results[2].1.as_ref().unwrap(), 30);
    }

    #[test]
    fn run_panics_with_a_summary_after_completing_all_variants() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let completed = AtomicU32::new(0);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Sweep::new()
                .variant("a", 0u32)
                .variant("bad", 1u32)
                .variant("c", 2u32)
                .run(|name, _| {
                    assert!(name != "bad", "injected failure");
                    completed.fetch_add(1, Ordering::SeqCst);
                })
        }));
        let msg = match caught {
            Ok(_) => panic!("run() must re-panic when a variant panicked"),
            Err(p) => *p.downcast::<String>().expect("summary is a String"),
        };
        assert_eq!(
            completed.load(Ordering::SeqCst),
            2,
            "the healthy variants still ran to completion"
        );
        assert!(
            msg.contains("1 sweep variant(s) panicked") && msg.contains("\"bad\""),
            "summary names the failed variant: {msg}"
        );
    }

    #[test]
    fn figure_json_contains_cycles_speedup_and_percentiles() {
        let sys = System::try_new(SystemConfig::small()).expect("small config is valid");
        let mut base = RunMetrics::capture("Baseline", &sys);
        base.cycles = 1000;
        base.stats.invoke_rtt.record(40);
        let mut levi = RunMetrics::capture("Leviathan", &sys);
        levi.cycles = 250;
        let rows = [
            Row {
                label: "Baseline",
                metrics: &base,
                paper_speedup: None,
                paper_energy: None,
            },
            Row {
                label: "Leviathan",
                metrics: &levi,
                paper_speedup: None,
                paper_energy: None,
            },
        ];
        let json = figure_json("fig_test", &rows);
        assert!(json.starts_with("{\"figure\":\"fig_test\""), "{json}");
        assert!(json.contains("\"cycles\":1000"), "{json}");
        assert!(json.contains("\"speedup\":4.000000"), "{json}");
        assert!(
            json.contains(
                "\"invoke_rtt\":{\"count\":1,\"p50\":32,\"p90\":32,\"p99\":32,\"max\":40}"
            ),
            "{json}"
        );
        assert!(json.contains("\"stream_stall\":{\"count\":0"), "{json}");
        assert!(json.contains("\"trace_dropped\":0"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn table_json_round_trips_headers_and_rows() {
        let json = table_json("t", &["a", "b"], &[vec!["1".into(), "x\"y".into()]]);
        assert_eq!(
            json,
            "{\"figure\":\"t\",\"table\":{\"headers\":[\"a\",\"b\"],\
             \"rows\":[[\"1\",\"x\\\"y\"]]}}"
        );
    }

    #[test]
    fn escape_handles_quotes() {
        let mut out = String::new();
        json::write_escaped(&mut out, "a\"b\\c");
        assert_eq!(out, "a\\\"b\\\\c");
    }

    #[test]
    fn sweep_collects_in_declaration_order() {
        // The slowest variant is declared first; a completion-order
        // collector would return it last.
        let results = Sweep::new()
            .variant("slow", 30u64)
            .variant("mid", 5u64)
            .variant("fast", 0u64)
            .run(|name, &ms| {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                format!("{name}:{ms}")
            });
        assert_eq!(
            results,
            [
                ("slow", "slow:30".to_string()),
                ("mid", "mid:5".to_string()),
                ("fast", "fast:0".to_string()),
            ]
        );
    }

    #[test]
    fn sweep_parallel_matches_serial_on_simulated_runs() {
        use levi_workloads::hashtable::{run_hashtable, HtScale, HtVariant};
        let scale = HtScale::test(64);
        let run = || {
            Sweep::new()
                .variant("Baseline", HtVariant::Baseline)
                .variant("Leviathan", HtVariant::Leviathan)
                .variant("Ideal", HtVariant::Ideal)
                .variant("Baseline2", HtVariant::Baseline)
                .run(|_, &v| {
                    let r = run_hashtable(v, &scale);
                    (r.metrics.cycles, r.checksum)
                })
        };
        let parallel = run();
        let serial: Vec<_> = [
            ("Baseline", HtVariant::Baseline),
            ("Leviathan", HtVariant::Leviathan),
            ("Ideal", HtVariant::Ideal),
            ("Baseline2", HtVariant::Baseline),
        ]
        .iter()
        .map(|&(n, v)| {
            let r = run_hashtable(v, &scale);
            (n, (r.metrics.cycles, r.checksum))
        })
        .collect();
        assert_eq!(parallel, serial);
        // Identical configs give identical runs even across threads.
        assert_eq!(parallel[0].1, parallel[3].1);
    }
}
