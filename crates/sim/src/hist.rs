//! Log2-bucketed latency histograms.
//!
//! The paper's evaluation reasons about *distributions*, not just means:
//! invoke round-trip latency under NACK backpressure, stream-pop stall
//! tails, DRAM queueing under phase bursts. A [`Histogram`] records one
//! `u64` sample per event into power-of-two buckets — O(1), allocation-free,
//! deterministic — and exposes percentile accessors with log2 resolution.
//! [`crate::stats::Stats`] embeds one histogram per tracked latency.

use std::fmt;

/// Number of buckets: one for zero plus one per power of two of `u64`.
pub const BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples.
///
/// Bucket 0 holds the value 0; bucket `k > 0` holds values in
/// `[2^(k-1), 2^k)`. Percentiles report the *lower bound* of the bucket
/// containing the requested rank (so they are exact to log2 resolution and
/// never overstate a latency), while `min`/`max`/`mean` are exact.
#[derive(Clone)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index for a value.
    #[inline]
    fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Lower bound of bucket `k` (the value percentiles report).
    #[inline]
    fn bucket_floor(k: usize) -> u64 {
        if k == 0 {
            0
        } else {
            1u64 << (k - 1)
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all samples (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`, reported as the lower bound
    /// of the log2 bucket containing that rank. Returns 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the requested sample, 1-based.
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (k, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= target {
                return Self::bucket_floor(k);
            }
        }
        self.max
    }

    /// Median (log2 resolution).
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 90th percentile (log2 resolution).
    pub fn p90(&self) -> u64 {
        self.percentile(0.90)
    }

    /// 99th percentile (log2 resolution).
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// The raw bucket counts (index = log2 bucket, see type docs).
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl PartialEq for Histogram {
    fn eq(&self, other: &Self) -> bool {
        self.buckets == other.buckets
            && self.count == other.count
            && self.sum == other.sum
            && self.min == other.min
            && self.max == other.max
    }
}

impl Eq for Histogram {}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("min", &self.min())
            .field("p50", &self.p50())
            .field("p90", &self.p90())
            .field("p99", &self.p99())
            .field("max", &self.max)
            .finish()
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} min={} p50={} p90={} p99={} max={}",
            self.count,
            self.min(),
            self.p50(),
            self.p90(),
            self.p99(),
            self.max
        )
    }
}

impl Histogram {
    /// Serializes histogram state (see [`crate::snapshot`]).
    pub(crate) fn snap_write(&self, w: &mut levi_isa::codec::Writer) {
        for b in &self.buckets {
            w.u64(*b);
        }
        w.u64(self.count);
        w.u64(self.sum);
        w.u64(self.min);
        w.u64(self.max);
    }

    /// Restores histogram state written by [`Histogram::snap_write`].
    pub(crate) fn snap_read(
        r: &mut levi_isa::codec::Reader,
    ) -> Result<Self, levi_isa::codec::CodecError> {
        let mut h = Histogram::new();
        for b in &mut h.buckets {
            *b = r.u64()?;
        }
        h.count = r.u64()?;
        h.sum = r.u64()?;
        h.min = r.u64()?;
        h.max = r.u64()?;
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(1023), 10);
        assert_eq!(Histogram::bucket_of(1024), 11);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Histogram::bucket_floor(0), 0);
        assert_eq!(Histogram::bucket_floor(1), 1);
        assert_eq!(Histogram::bucket_floor(11), 1024);
    }

    #[test]
    fn exact_stats_track_samples() {
        let mut h = Histogram::new();
        for v in [5u64, 10, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1115);
        assert_eq!(h.min(), 5);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 278.75).abs() < 1e-12);
    }

    #[test]
    fn percentiles_have_log2_resolution() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        // The 50th sample is 50, in bucket [32, 64) -> lower bound 32.
        assert_eq!(h.p50(), 32);
        // The 90th sample is 90, in bucket [64, 128) -> 64.
        assert_eq!(h.p90(), 64);
        assert_eq!(h.p99(), 64);
        // Percentiles never exceed the true max's bucket floor.
        assert!(h.p99() <= h.max());
    }

    #[test]
    fn percentile_of_uniform_bucket() {
        let mut h = Histogram::new();
        for _ in 0..1000 {
            h.record(7); // bucket [4, 8)
        }
        assert_eq!(h.p50(), 4);
        assert_eq!(h.p99(), 4);
        assert_eq!(h.max(), 7);
    }

    #[test]
    fn zero_values_land_in_bucket_zero() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(0);
        h.record(8);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.percentile(1.0), 8);
        assert_eq!(h.buckets()[0], 2);
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(1);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 1);
        assert_eq!(a.max(), 1000);
    }

    #[test]
    fn equality_is_structural() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(42);
        b.record(42);
        assert_eq!(a, b);
        b.record(43);
        assert_ne!(a, b);
    }
}
