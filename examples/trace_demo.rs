//! Trace demo: run a multi-tile invoke + stream workload with the
//! observability layer on and export a Chrome/Perfetto trace.
//!
//! Run with: `cargo run --release --example trace_demo [out.json]`
//!
//! Open the output at <https://ui.perfetto.dev> (or `chrome://tracing`):
//! each tile is a process with tracks for its core, near-data engines, and
//! NoC router; DRAM controllers get their own process. Timestamps are
//! simulated cycles.

use std::sync::Arc;

use levi_isa::{ActionId, Location, MemWidth, ProgramBuilder, Reg, RmwOp};
use leviathan::{StreamSpec, System, SystemConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "trace_demo.json".into());

    let mut pb = ProgramBuilder::new();

    // Offloaded action: atomic add on a counter actor.
    let add_action = {
        let mut f = pb.function("counter_add");
        let (actor, amt, old) = (Reg(0), Reg(1), Reg(2));
        f.rmw_relaxed(RmwOp::Add, old, actor, amt, MemWidth::B8);
        f.halt();
        f.finish()
    };

    // Stream producer: pushes 1..=n.
    let producer = {
        let mut f = pb.function("producer");
        let (handle, n, i) = (Reg(0), Reg(1), Reg(2));
        f.imm(i, 1);
        let top = f.label();
        let out = f.label();
        f.bind(top);
        f.bge_u(i, n, out);
        f.push(handle, i);
        f.addi(i, i, 1);
        f.jmp(top);
        f.bind(out);
        f.halt();
        f.finish()
    };

    // Per-core thread: invoke counters scattered across banks, then drain
    // part of the stream (tile 0 only consumes).
    let main_fn = {
        let mut f = pb.function("main");
        let ctx = Reg(0);
        let (counters, sbuf, cap, sid, consume) = (Reg(8), Reg(9), Reg(10), Reg(11), Reg(12));
        let (i, n, amt, addr, v) = (Reg(16), Reg(17), Reg(18), Reg(19), Reg(20));
        f.ld8(counters, ctx, 0)
            .ld8(sbuf, ctx, 8)
            .ld8(cap, ctx, 16)
            .ld8(sid, ctx, 24)
            .ld8(consume, ctx, 32);
        f.imm(i, 0).imm(n, 200).imm(amt, 1);
        let t1 = f.label();
        let d1 = f.label();
        f.bind(t1);
        f.bge_u(i, n, d1);
        f.muli(addr, i, 7);
        f.andi(addr, addr, 31);
        f.muli(addr, addr, 64);
        f.add(addr, addr, counters);
        f.invoke(addr, ActionId(0), &[amt], Location::Dynamic);
        f.addi(i, i, 1);
        f.jmp(t1);
        f.bind(d1);
        // Consumer path: pop `consume` entries.
        f.imm(i, 0);
        let t2 = f.label();
        let d2 = f.label();
        let nowrap = f.label();
        f.mov(addr, sbuf);
        f.muli(cap, cap, 8);
        f.add(cap, cap, sbuf);
        f.bind(t2);
        f.bge_u(i, consume, d2);
        f.ld8(v, addr, 0);
        f.pop(sid);
        f.addi(addr, addr, 8);
        f.blt_u(addr, cap, nowrap);
        f.mov(addr, sbuf);
        f.bind(nowrap);
        f.addi(i, i, 1);
        f.jmp(t2);
        f.bind(d2);
        f.halt();
        f.finish()
    };
    let prog = Arc::new(pb.finish()?);

    // 4 tiles, tracing + a 256-cycle time-series sampler.
    let mut cfg = SystemConfig::small();
    cfg.machine = cfg.machine.traced().sampled(256);
    let mut sys = System::try_new(cfg)?;
    sys.register_action(&prog, add_action);

    let counters = sys.alloc_raw(64 * 32, 64);
    let stream = sys
        .create_stream(&StreamSpec::new("nums", 8, 0, &prog, producer).with_args(&[96]))
        .unwrap();
    for t in 0..sys.tiles() {
        let ctx = sys.alloc_raw(40, 64);
        sys.write_u64(ctx, counters);
        sys.write_u64(ctx + 8, stream.buffer);
        sys.write_u64(ctx + 16, stream.capacity);
        sys.write_u64(ctx + 24, stream.reg_value());
        sys.write_u64(ctx + 32, if t == 0 { 64 } else { 0 });
        sys.spawn_thread(t, &prog, main_fn, &[ctx]).unwrap();
    }
    sys.run()?;

    let s = sys.stats();
    std::fs::write(&out_path, s.trace.to_chrome_json())?;

    println!(
        "wrote {out_path} ({} events, {} dropped)",
        s.trace.len(),
        s.trace.dropped()
    );
    println!("open it at https://ui.perfetto.dev");
    println!();
    println!("invoke RTT:      {}", s.invoke_rtt);
    println!("load-to-use:     {}", s.load_to_use);
    println!("DRAM queue:      {}", s.dram_queue);
    println!("stream stall:    {}", s.stream_stall);
    println!();
    println!("time-series samples (every 256 cycles):");
    println!(
        "{:>8} {:>6} {:>8} {:>8} {:>8} {:>6}",
        "cycle", "ipc", "l1miss", "flits", "dram", "ctxs"
    );
    for smp in s.timeline.samples().iter().take(12) {
        println!(
            "{:>8} {:>6.2} {:>7.1}% {:>8} {:>8} {:>6}",
            smp.cycle,
            smp.ipc,
            smp.l1_miss_ratio * 100.0,
            smp.noc_flit_hops,
            smp.dram_accesses,
            smp.engine_ctxs
        );
    }
    Ok(())
}
