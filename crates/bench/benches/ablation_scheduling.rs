//! Ablation — DYNAMIC invoke scheduling and the 1/32 migrate-local policy
//! (DESIGN.md §4, paper Sec. VI-B1).
//!
//! Compares REMOTE-only placement against DYNAMIC placement (which probes
//! the hierarchy and occasionally migrates tasks up to let hot actors
//! settle in private caches) on the hash-table workload, whose buckets
//! have skewed popularity under Zipfian keys.

use levi_bench::{header, quick_mode, table};
use levi_workloads::hashtable::{run_hashtable_with, HtScale, HtVariant};

fn main() {
    header(
        "Ablation — invoke placement (REMOTE vs DYNAMIC + migrate-local)",
        "paper: DYNAMIC locates the actor wherever it currently is",
    );
    let scale = if quick_mode() {
        HtScale::test(64)
    } else {
        HtScale::paper(64)
    };
    let mut rows = Vec::new();
    for (name, variant) in [
        ("baseline (core walk)", HtVariant::Baseline),
        ("REMOTE placement", HtVariant::Leviathan),
        ("DYNAMIC placement", HtVariant::LeviathanDynamic),
    ] {
        let r = run_hashtable_with(variant, &scale, |_| {});
        eprintln!("  ran {name}");
        rows.push(vec![
            name.to_string(),
            r.metrics.cycles.to_string(),
            r.metrics.stats.invoke_migrations.to_string(),
            r.metrics.stats.noc_flit_hops.to_string(),
        ]);
    }
    table(
        &["placement", "cycles", "migrations", "NoC flit-hops"],
        &rows,
    );
}
