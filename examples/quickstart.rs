//! Quickstart: a remote memory operation (RMO) actor — the paper's Fig. 2.
//!
//! An actor combines data (a set of 64-bit counters) with a near-data
//! action (an atomic add). Sixteen threads hammer the counters; instead of
//! ping-ponging the lines between cores with fenced atomics, each update
//! is `invoke`d and executes on the engine next to the LLC bank that holds
//! the counter.
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::Arc;

use levi_isa::{ActionId, Location, MemWidth, ProgramBuilder, Reg, RmwOp};
use leviathan::{System, SystemConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut pb = ProgramBuilder::new();

    // class Actor { int data; void action(int update) { atomicAdd(data, update); } }
    let action = {
        let mut f = pb.function("counter_add");
        let (actor, amount, old) = (Reg(0), Reg(1), Reg(2));
        f.rmw_relaxed(RmwOp::Add, old, actor, amount, MemWidth::B8);
        f.halt();
        f.finish()
    };

    // Each thread invokes `counter_add` on a counter chosen by a simple
    // hash of the iteration — `invoke actor->action(update)`.
    let main_fn = {
        let mut f = pb.function("main");
        let (counters, n, stride) = (Reg(0), Reg(1), Reg(2));
        let (i, idx, actor, amount) = (Reg(8), Reg(9), Reg(10), Reg(11));
        f.imm(i, 0).imm(amount, 1);
        let top = f.label();
        let out = f.label();
        f.bind(top);
        f.bge_u(i, n, out);
        f.muli(idx, i, 7);
        f.remu(idx, idx, stride);
        f.muli(actor, idx, 8);
        f.add(actor, actor, counters);
        f.invoke(actor, ActionId(0), &[amount], Location::Dynamic);
        f.addi(i, i, 1);
        f.jmp(top);
        f.bind(out);
        f.halt();
        f.finish()
    };
    let prog = Arc::new(pb.finish()?);

    let mut sys = System::try_new(SystemConfig::paper_default())?;
    let n_counters = 64u64;
    let counters = sys.alloc_raw(8 * n_counters, 64);
    sys.register_action(&prog, action);

    let per_thread = 1000u64;
    for t in 0..sys.tiles() {
        sys.spawn_thread(t, &prog, main_fn, &[counters, per_thread, n_counters])
            .unwrap();
    }
    sys.run()?;

    let total: u64 = (0..n_counters)
        .map(|i| sys.read_u64(counters + 8 * i))
        .sum();
    assert_eq!(total, per_thread * sys.tiles() as u64);

    println!("counters sum:        {total} (16 threads x 1000 updates)");
    println!("offloaded tasks:     {}", sys.stats().invokes);
    println!(
        "memory fences:       {} (fenced atomics would pay one each)",
        sys.stats().fences
    );
    println!(
        "line ping-pong:      {} ownership transfers",
        sys.stats().ownership_transfers
    );
    println!("total cycles:        {}", sys.stats().cycles);
    println!();
    println!("Updates execute on engines near the data. DYNAMIC placement");
    println!("occasionally (1/32) runs a task locally so hot counters can");
    println!("settle into a tile's private cache — the transfers above are");
    println!("those migrations at work, not core-side atomics ping-ponging.");
    Ok(())
}
