//! Thin wrapper: `cargo bench --bench fig16_decompress` dispatches to the `fig16_decompress`
//! descriptor in the unified figure registry (`levi_bench::figures`),
//! which `levi-bench run fig16_decompress` executes identically.

fn main() {
    levi_bench::runner::bench_main("fig16_decompress");
}
