//! Golden-model equivalence: the timed machine and the functional
//! interpreter share one copy of the LevIR semantics, so any NDC-free
//! program must compute identical results on both — regardless of cache
//! states, contention, or scheduling.

use std::sync::Arc;

use levi_isa::interp::Interpreter;
use levi_isa::{Memory, PagedMem, ProgramBuilder, Reg};
use levi_sim::{Machine, MachineConfig};

/// Builds a moderately branchy checksum kernel: walks an array, mixing
/// loads, multiplies, shifts, and data-dependent branches.
fn build_kernel() -> (Arc<levi_isa::Program>, levi_isa::FuncId) {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("mix");
    let (base, n, out) = (Reg(0), Reg(1), Reg(2));
    let (i, v, acc, t) = (Reg(8), Reg(9), Reg(10), Reg(11));
    let top = f.label();
    let odd = f.label();
    let cont = f.label();
    let done = f.label();
    f.imm(i, 0).imm(acc, 0x9E37_79B9u64);
    f.bind(top);
    f.bge_u(i, n, done);
    f.muli(t, i, 8);
    f.add(t, t, base);
    f.ld8(v, t, 0);
    f.andi(t, v, 1);
    f.beq(t, Reg(12), odd); // r12 == 0: branch when v even
    f.mul(acc, acc, v);
    f.jmp(cont);
    f.bind(odd);
    f.xor(acc, acc, v);
    f.shli(acc, acc, 1);
    f.bind(cont);
    f.addi(i, i, 1);
    f.jmp(top);
    f.bind(done);
    f.st8(out, 0, acc);
    f.halt();
    let func = f.finish();
    (Arc::new(pb.finish().unwrap()), func)
}

#[test]
fn machine_matches_interpreter() {
    let (prog, func) = build_kernel();
    let n = 500u64;
    let base = 0x2_0000u64;
    let out = 0x8_0000u64;

    // Functional reference.
    let mut ref_mem = PagedMem::new();
    let mut x = 12345u64;
    for k in 0..n {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ref_mem.write_u64(base + 8 * k, x >> 16);
    }
    // `run` treats the entry's Halt; use run_with_host? Halt ends ctx; run
    // returns r0 — we only care about memory.
    let mut interp = Interpreter::new(&prog);
    let _ = interp.run(func, &[base, n, out], &mut ref_mem).unwrap();
    let expected = ref_mem.read_u64(out);

    // Timed machine, several configurations.
    for tiles in [4u32, 16] {
        let mut cfg = MachineConfig::with_tiles(tiles);
        cfg.quantum = 16;
        let mut m = Machine::try_new(cfg).unwrap();
        let mut x = 12345u64;
        for k in 0..n {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            m.mem_mut().write_u64(base + 8 * k, x >> 16);
        }
        m.spawn_thread(0, prog.clone(), func, &[base, n, out])
            .unwrap();
        m.run().unwrap();
        assert_eq!(
            m.mem().read_u64(out),
            expected,
            "timed result diverged at {tiles} tiles"
        );
    }
}

#[test]
fn machine_matches_interpreter_multithreaded() {
    // Each thread works on a disjoint slice; concatenated results must
    // match the interpreter running the slices sequentially.
    let (prog, func) = build_kernel();
    let n_per = 200u64;
    let threads = 4u32;

    let mut ref_mem = PagedMem::new();
    let mut m = Machine::try_new(MachineConfig::with_tiles(4)).unwrap();
    for t in 0..threads as u64 {
        for k in 0..n_per {
            let v = (t * 1000 + k) * 2654435761 % 100000;
            ref_mem.write_u64(0x10000 + t * 0x4000 + 8 * k, v);
            m.mem_mut().write_u64(0x10000 + t * 0x4000 + 8 * k, v);
        }
    }
    let mut expected = Vec::new();
    for t in 0..threads as u64 {
        let mut interp = Interpreter::new(&prog);
        let _ = interp
            .run(
                func,
                &[0x10000 + t * 0x4000, n_per, 0x9_0000 + t * 8],
                &mut ref_mem,
            )
            .unwrap();
        expected.push(ref_mem.read_u64(0x9_0000 + t * 8));
    }
    for t in 0..threads {
        m.spawn_thread(
            t,
            prog.clone(),
            func,
            &[0x10000 + t as u64 * 0x4000, n_per, 0x9_0000 + t as u64 * 8],
        )
        .unwrap();
    }
    m.run().unwrap();
    for t in 0..threads as u64 {
        assert_eq!(m.mem().read_u64(0x9_0000 + t * 8), expected[t as usize]);
    }
}
