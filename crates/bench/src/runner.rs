//! The unified figure runner: a registry of figure descriptors and the
//! shared machinery that drives [`levi_workloads::Workload`]s through
//! [`crate::Sweep`].
//!
//! Each figure of the paper's evaluation is one [`Figure`] descriptor in
//! [`crate::figures::ALL`]: a static id, a one-line summary, the registry
//! workloads it exercises, and a `run` function that prints the figure.
//! The `levi-bench` binary and the thin `cargo bench` wrappers both
//! dispatch through [`bench_main`] / [`run_figure`], so there is exactly
//! one implementation of every figure no matter how it is invoked.
//!
//! Shared plumbing lives here so descriptors stay declarative:
//!
//! * [`RunCtx`] — scale selection (`--quick`), variant filtering
//!   (`--filter`), and the [`RunEnv`] injected into every run
//!   (`--fault-plan`).
//! * [`sweep_variants`] / [`sweep_prepared`] — run a workload's variants
//!   through a parallel [`crate::Sweep`], print per-run progress, and
//!   check every supported variant against its golden model.
//! * [`report_figure`] — join measured outcomes with the paper's numbers
//!   by label and emit the standard speedup/energy report.

use levi_workloads::harness::{
    DynWorkload, PreparedRun, RunEnv, RunOutcome, RunStatus, ScaleKind, Workload,
};

use crate::{report, Row, Sweep};

/// Per-invocation context threaded into every figure's `run` function.
#[derive(Clone, Debug, Default)]
pub struct RunCtx {
    /// Run at reduced scale (`--quick` / `LEVI_BENCH_QUICK`).
    pub quick: bool,
    /// Case-insensitive substring filter on variant labels; the baseline
    /// (first) variant always runs so speedups stay well-defined.
    pub filter: Option<String>,
    /// Environment applied uniformly to every simulated run.
    pub env: RunEnv,
}

impl RunCtx {
    /// A context from the process environment, as the `cargo bench`
    /// wrappers use: `LEVI_BENCH_QUICK` selects quick scale,
    /// `LEVI_CHECKPOINT_EVERY` / `LEVI_SNAPSHOT_VERIFY` arm the snapshot
    /// hook, no filter, default environment otherwise.
    pub fn from_env() -> Self {
        let mut env = RunEnv::default();
        if let Ok(v) = std::env::var("LEVI_CHECKPOINT_EVERY") {
            env.checkpoint_every = v.parse().unwrap_or_else(|_| {
                panic!("LEVI_CHECKPOINT_EVERY must be a cycle count, got {v:?}")
            });
        }
        env.snapshot_verify = std::env::var("LEVI_SNAPSHOT_VERIFY").is_ok_and(|v| v != "0");
        RunCtx {
            quick: crate::quick_mode(),
            env,
            ..RunCtx::default()
        }
    }

    /// The scale kind this context selects.
    pub fn kind(&self) -> ScaleKind {
        if self.quick {
            ScaleKind::Quick
        } else {
            ScaleKind::Paper
        }
    }

    /// Whether the variant at `index` with display `label` should run.
    pub fn keeps(&self, index: usize, label: &str) -> bool {
        index == 0
            || match &self.filter {
                None => true,
                Some(f) => label.to_ascii_lowercase().contains(&f.to_ascii_lowercase()),
            }
    }
}

/// Labelled outcomes of one variant sweep, in presentation order.
/// Unsupported variants are absent (they printed their reason instead).
pub struct Outcomes {
    entries: Vec<(&'static str, RunOutcome)>,
}

impl Outcomes {
    /// The outcome for the variant labelled `label`, if it ran.
    pub fn get(&self, label: &str) -> Option<&RunOutcome> {
        self.entries
            .iter()
            .find(|(l, _)| *l == label)
            .map(|(_, o)| o)
    }

    /// Iterates `(label, outcome)` pairs in presentation order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &RunOutcome)> {
        self.entries.iter().map(|(l, o)| (*l, o))
    }

    /// How many variants actually ran.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no variant ran.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// How the execution engine obtained (or failed to obtain) one
/// variant's outcome. This is the engine→shell interface of the sweep
/// path: [`execute_sweep`] produces these without printing a byte, and
/// the presentation shell ([`journaled_sweep`]) renders them — so the
/// CLI, journal resume, and `levi-bench serve` all drive one engine.
enum VariantRun {
    /// Loaded from the active journal instead of re-running.
    Resumed(RunOutcome),
    /// Freshly executed (and recorded in the journal, if one is active).
    Fresh(RunOutcome),
    /// The (variant, scale) combination is unsupported.
    Unsupported(&'static str),
    /// The variant's run panicked.
    Panicked(crate::VariantPanic),
}

/// The execution engine of the sweep path: partitions `labels` into
/// journal-resumed and pending, runs the pending set through
/// [`Sweep::try_run`] (one panicking variant cannot abort its siblings),
/// checks every outcome — resumed or fresh — against the golden model
/// (which also catches a stale journal from an older build), and records
/// every fresh completion in the journal *before* returning, so a
/// crashed or partly-failed invocation can be resumed without repeating
/// its finished work. Performs no output: presentation belongs to the
/// shell.
fn execute_sweep<F, G>(
    figure: &str,
    labels: &[&'static str],
    run: F,
    check: G,
) -> Vec<(&'static str, VariantRun)>
where
    F: Fn(&'static str) -> RunStatus + Sync,
    G: Fn(&str) -> u64,
{
    let sweep_idx = crate::journal::begin_sweep(figure);

    let mut resumed: std::collections::HashMap<&'static str, RunOutcome> =
        std::collections::HashMap::new();
    let mut pending: Vec<&'static str> = Vec::new();
    for &label in labels {
        match sweep_idx.and_then(|s| crate::journal::lookup(figure, s, label)) {
            Some(o) => {
                resumed.insert(label, o);
            }
            None => pending.push(label),
        }
    }

    let mut runs: std::collections::HashMap<&'static str, Result<RunStatus, crate::VariantPanic>> =
        Sweep::new()
            .variants(pending.iter().map(|&l| (l, l)))
            .try_run(|_, &label| run(label))
            .into_iter()
            .collect();

    labels
        .iter()
        .map(|&label| {
            if let Some(o) = resumed.remove(label) {
                assert_eq!(
                    o.checksum,
                    check(label),
                    "{label}: journaled outcome diverged from the golden model (stale journal?)"
                );
                return (label, VariantRun::Resumed(o));
            }
            let result = match runs.remove(label) {
                Some(r) => r,
                None => unreachable!("every label was partitioned into resumed or pending"),
            };
            match result {
                Ok(RunStatus::Done(o)) => {
                    assert_eq!(
                        o.checksum,
                        check(label),
                        "{label} diverged from the golden model"
                    );
                    if let Some(s) = sweep_idx {
                        crate::journal::record(figure, s, label, &o);
                    }
                    (label, VariantRun::Fresh(*o))
                }
                Ok(RunStatus::Unsupported(reason)) => (label, VariantRun::Unsupported(reason)),
                Err(p) => (label, VariantRun::Panicked(p)),
            }
        })
        .collect()
}

/// The presentation shell over [`execute_sweep`]: prints per-variant
/// progress (resumed vs fresh), unsupported notices, emits telemetry
/// blocks, and defers a panic summary until every variant has reported —
/// all through the [`crate::out`] seam, so the same bytes reach the
/// process streams in-process and the wire under `levi-bench serve`.
fn journaled_sweep<F, G>(labels: Vec<&'static str>, run: F, check: G) -> Outcomes
where
    F: Fn(&'static str) -> RunStatus + Sync,
    G: Fn(&str) -> u64,
{
    let figure = current_figure();
    let mut entries = Vec::new();
    let mut failed: Vec<crate::VariantPanic> = Vec::new();
    for (label, result) in execute_sweep(&figure, &labels, run, check) {
        match result {
            VariantRun::Resumed(o) => {
                crate::progressln!(
                    "  journal {:<14} {:>12} cycles (resumed)",
                    label,
                    o.metrics.cycles
                );
                emit_run_telemetry(&figure, label, &o.metrics.stats);
                entries.push((label, o));
            }
            VariantRun::Fresh(o) => {
                crate::progressln!("  ran {:<18} {:>12} cycles", label, o.metrics.cycles);
                emit_run_telemetry(&figure, label, &o.metrics.stats);
                entries.push((label, o));
            }
            VariantRun::Unsupported(reason) => {
                crate::outln!("{label:<22} UNSUPPORTED — {reason}");
            }
            VariantRun::Panicked(p) => failed.push(p),
        }
    }
    if !failed.is_empty() {
        let mut msg = format!("{} sweep variant(s) panicked:", failed.len());
        for p in &failed {
            msg.push_str(&format!("\n  {p}"));
        }
        panic!("{msg}");
    }
    Outcomes { entries }
}

/// Appends one run's registry dump to the `LEVI_TELEMETRY` file (no-op
/// when unset). The block's scope is `figure/label`, using the figure id
/// [`run_figure`] exported for the runs it drives.
fn emit_run_telemetry(figure: &str, label: &str, stats: &levi_sim::Stats) {
    if std::env::var("LEVI_TELEMETRY").is_err() {
        return;
    }
    let scope = if figure.is_empty() {
        label.to_string()
    } else {
        format!("{figure}/{label}")
    };
    crate::emit_telemetry_block(&levi_sim::Telemetry::new(stats).to_jsonl(&scope));
}

/// Runs the (filtered) variants of a typed workload at `scale` through a
/// parallel [`Sweep`], checking every supported variant against the
/// golden model. Figures that sweep scale knobs call [`Workload::run`]
/// directly instead; this helper covers the standard "all variants at one
/// scale" shape.
pub fn sweep_variants<W: Workload>(w: &W, scale: &W::Scale, ctx: &RunCtx) -> Outcomes {
    let input = w.build_input(scale);
    let variants: Vec<(&'static str, W::Variant)> = w
        .variants()
        .into_iter()
        .enumerate()
        .filter(|&(i, (label, _))| ctx.keeps(i, label))
        .map(|(_, pair)| pair)
        .collect();
    let env = &ctx.env;
    let input_ref = &input;
    let labels: Vec<&'static str> = variants.iter().map(|&(l, _)| l).collect();
    let variant_of = |label: &str| {
        variants
            .iter()
            .find(|(l, _)| *l == label)
            .expect("label came from this list")
            .1
    };
    journaled_sweep(
        labels,
        |label| w.run(variant_of(label), scale, input_ref, env),
        |label| w.golden(variant_of(label), scale, &input),
    )
}

/// Registry-path counterpart of [`sweep_variants`]: runs a
/// [`PreparedRun`]'s variants by label. This is how figures drive
/// workloads they only know by registry name.
pub fn sweep_prepared(w: &dyn DynWorkload, prepared: &dyn PreparedRun, ctx: &RunCtx) -> Outcomes {
    let labels: Vec<&'static str> = w
        .variant_labels()
        .into_iter()
        .enumerate()
        .filter(|&(i, label)| ctx.keeps(i, label))
        .map(|(_, label)| label)
        .collect();
    let env = &ctx.env;
    journaled_sweep(
        labels,
        |label| prepared.run(label, env),
        |label| prepared.golden(label),
    )
}

/// Emits the standard speedup/energy report for a variant sweep, joining
/// the paper's `(label, speedup, relative energy)` numbers by label.
/// Rows keep the sweep's presentation order; the first outcome is the
/// baseline.
pub fn report_figure(
    figure: &str,
    outcomes: &Outcomes,
    paper: &[(&str, Option<f64>, Option<f64>)],
) {
    let rows: Vec<Row<'_>> = outcomes
        .iter()
        .map(|(label, o)| {
            let (ps, pe) = paper
                .iter()
                .find(|(l, _, _)| *l == label)
                .map_or((None, None), |&(_, ps, pe)| (ps, pe));
            Row {
                label,
                metrics: &o.metrics,
                paper_speedup: ps,
                paper_energy: pe,
            }
        })
        .collect();
    report(figure, &rows);
}

/// One figure or table of the paper's evaluation.
pub struct Figure {
    /// Stable identifier (`fig05_phi`, `table04_area`, ...) — the name
    /// `levi-bench run` accepts and the `"figure"` key in report JSON.
    pub id: &'static str,
    /// One-line summary shown by `levi-bench list`.
    pub about: &'static str,
    /// Registry workloads this figure exercises (empty for figures that
    /// measure the substrate or print static configuration).
    pub workloads: &'static [&'static str],
    /// Prints the figure (and emits its report JSON) for a context.
    pub run: fn(&RunCtx),
}

/// Finds a figure by exact id, or by unique prefix.
pub fn find_figure(id: &str) -> Option<&'static Figure> {
    let all = crate::figures::ALL;
    if let Some(f) = all.iter().find(|f| f.id == id) {
        return Some(f);
    }
    let mut matches = all.iter().filter(|f| f.id.starts_with(id));
    match (matches.next(), matches.next()) {
        (Some(f), None) => Some(f),
        _ => None,
    }
}

thread_local! {
    /// The figure id the current thread is running (see [`run_figure`]).
    /// Thread-local — not the process environment the pre-serve harness
    /// used — because `levi-bench serve` executes different figures on
    /// different worker threads concurrently.
    static CURRENT_FIGURE: std::cell::RefCell<String> = const { std::cell::RefCell::new(String::new()) };
}

/// The figure id the current thread is running (empty outside
/// [`run_figure`]). Journal records and telemetry scopes use this.
pub fn current_figure() -> String {
    CURRENT_FIGURE.with(|f| f.borrow().clone())
}

/// Runs one figure under `ctx`, scoping [`current_figure`] to its id for
/// the duration so telemetry blocks and journal records emitted by the
/// runs it drives carry a `figure/variant` scope. A figure runs entirely
/// on the calling thread (only its inner sweeps fan out), so the scope
/// is thread-local and concurrent server jobs cannot race on it.
pub fn run_figure(fig: &Figure, ctx: &RunCtx) {
    struct Scope(String);
    impl Drop for Scope {
        fn drop(&mut self) {
            CURRENT_FIGURE.with(|f| *f.borrow_mut() = std::mem::take(&mut self.0));
        }
    }
    let prev = CURRENT_FIGURE.with(|f| std::mem::replace(&mut *f.borrow_mut(), fig.id.to_string()));
    let _scope = Scope(prev);
    (fig.run)(ctx);
}

/// Entry point for the thin `cargo bench` wrappers: runs the named
/// figure with a [`RunCtx`] built from the environment, exactly as the
/// pre-refactor standalone bench binaries did.
///
/// # Panics
/// Panics if `id` names no registered figure.
pub fn bench_main(id: &str) {
    let fig = find_figure(id).unwrap_or_else(|| panic!("unknown figure {id:?}"));
    run_figure(fig, &RunCtx::from_env());
}

/// Renders the roll-up manifest emitted after `levi-bench run all`: which
/// figures ran, which registry workloads each exercises, and the full
/// registry, so report consumers can check coverage without compiling the
/// workspace.
pub fn manifest_json(quick: bool) -> String {
    let mut w = crate::json::JsonWriter::new();
    w.begin_obj();
    w.key("manifest").begin_obj();
    w.key("version").u64(1);
    w.key("quick").bool(quick);
    w.key("figures").begin_arr();
    for f in crate::figures::ALL {
        w.begin_obj();
        w.key("id").str(f.id);
        w.key("workloads").begin_arr();
        for name in f.workloads {
            w.str(name);
        }
        w.end_arr();
        w.end_obj();
    }
    w.end_arr();
    w.key("workloads").begin_arr();
    for wl in levi_workloads::REGISTRY {
        w.str(wl.name());
    }
    w.end_arr();
    w.end_obj();
    w.end_obj();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_ids_are_unique_and_prefix_resolvable() {
        let mut ids: Vec<_> = crate::figures::ALL.iter().map(|f| f.id).collect();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), before, "duplicate figure ids");
        assert!(find_figure("fig05_phi").is_some());
        assert_eq!(find_figure("fig05").unwrap().id, "fig05_phi");
        assert!(
            find_figure("fig2").is_none(),
            "ambiguous prefix must not resolve"
        );
        assert!(find_figure("nope").is_none());
    }

    #[test]
    fn every_registry_workload_is_covered_by_some_figure() {
        for w in levi_workloads::REGISTRY {
            assert!(
                crate::figures::ALL
                    .iter()
                    .any(|f| f.workloads.contains(&w.name())),
                "workload {} appears in no figure",
                w.name()
            );
        }
        for f in crate::figures::ALL {
            for w in f.workloads {
                assert!(
                    levi_workloads::harness::find_workload(w).is_some(),
                    "figure {} names unregistered workload {w}",
                    f.id
                );
            }
        }
    }

    #[test]
    fn manifest_lists_every_figure_and_workload() {
        let m = manifest_json(true);
        for f in crate::figures::ALL {
            assert!(m.contains(&format!("\"id\":\"{}\"", f.id)), "{m}");
        }
        for w in levi_workloads::REGISTRY {
            assert!(m.contains(&format!("\"{}\"", w.name())), "{m}");
        }
        assert_eq!(m.matches('{').count(), m.matches('}').count());
    }

    #[test]
    fn filter_keeps_the_baseline() {
        let ctx = RunCtx {
            filter: Some("leviathan".into()),
            ..RunCtx::default()
        };
        assert!(ctx.keeps(0, "Baseline"));
        assert!(ctx.keeps(3, "Leviathan"));
        assert!(ctx.keeps(4, "Leviathan (DYNAMIC)"));
        assert!(!ctx.keeps(2, "tako Relax"));
        assert!(RunCtx::default().keeps(2, "tako Relax"));
    }
}
