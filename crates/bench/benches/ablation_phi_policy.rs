//! Ablation — PHI's delta-eviction policy (DESIGN.md §4).
//!
//! The paper's PHI "dynamically chooses the policy that minimizes memory
//! bandwidth" between applying binned deltas in place and logging them for
//! later. We expose both: `InPlace` applies memory-side at eviction; `Log`
//! appends to bank-local streaming-store logs and runs a
//! propagation-blocking binning pass.

use levi_bench::{header, quick_mode, table};
use levi_workloads::phi::{phi_graph, run_phi_on, PhiPolicy, PhiScale, PhiVariant};

fn main() {
    let mut scale = if quick_mode() {
        PhiScale::test()
    } else {
        PhiScale::paper()
    };
    header(
        "Ablation — PHI delta-eviction policy (in-place vs log)",
        "paper Sec. IV-A: PHI chooses the policy minimizing memory bandwidth",
    );
    let graph = phi_graph(&scale);
    let mut rows = Vec::new();
    let base = run_phi_on(PhiVariant::Baseline, &scale, &graph);
    for (name, policy) in [
        ("in-place (mem-side)", PhiPolicy::InPlace),
        ("log + binning", PhiPolicy::Log),
    ] {
        scale.policy = policy;
        let r = run_phi_on(PhiVariant::Leviathan, &scale, &graph);
        eprintln!("  ran {name}");
        assert_eq!(
            r.rank_checksum, base.rank_checksum,
            "policy changed results"
        );
        rows.push(vec![
            name.to_string(),
            format!(
                "{:.2}x",
                base.metrics.cycles as f64 / r.metrics.cycles as f64
            ),
            r.metrics.stats.dram_accesses.to_string(),
            format!(
                "{:.0}%",
                r.metrics.energy.relative_to(&base.metrics.energy) * 100.0
            ),
        ]);
    }
    rows.insert(
        0,
        vec![
            "baseline (no PHI)".into(),
            "1.00x".into(),
            base.metrics.stats.dram_accesses.to_string(),
            "100%".into(),
        ],
    );
    table(&["policy", "speedup", "DRAM accesses", "energy"], &rows);
}
