//! Memoization near the cache (Table I cites memoization \[94, 95\] as a
//! task-offload application) — and a demonstration of paradigm
//! *composition*: a phantom Morph provides the memo table (constructors
//! initialize entries to EMPTY, no DRAM backing), while offloaded tasks
//! look up and fill entries next to the LLC bank that owns them.
//!
//! Run with: `cargo run --release --example memoize`

use std::sync::Arc;

use levi_isa::{ActionId, Location, ProgramBuilder, Reg};
use levi_sim::MorphLevel;
use leviathan::{MorphSpec, System, SystemConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut pb = ProgramBuilder::new();

    // The "expensive" function: a short hash iterated 64 times.
    // memo_eval(actor=memo entry, x, fut): near-cache memoized evaluation.
    let memo_eval = {
        let mut f = pb.function("memo_eval");
        let (entry, x, fut) = (Reg(0), Reg(1), Reg(2));
        let (cached, v, i, n, zero) = (Reg(8), Reg(9), Reg(10), Reg(11), Reg(12));
        let hit = f.label();
        let done = f.label();
        f.imm(zero, 0);
        f.ld8(cached, entry, 0);
        f.bne(cached, zero, hit);
        // Miss: compute (64 rounds), store, respond.
        f.mov(v, x);
        f.imm(i, 0).imm(n, 64);
        let top = f.label();
        let out = f.label();
        f.bind(top);
        f.bge_u(i, n, out);
        f.muli(v, v, 6364136223846793005u64);
        f.addi(v, v, 1442695040888963407u64);
        f.shri(Reg(13), v, 31);
        f.xor(v, v, Reg(13));
        f.addi(i, i, 1);
        f.jmp(top);
        f.bind(out);
        f.ori(v, v, 1); // never 0, so EMPTY is unambiguous
        f.st8(entry, 0, v);
        f.future_send(fut, v);
        f.jmp(done);
        f.bind(hit);
        f.future_send(fut, cached);
        f.bind(done);
        f.halt();
        f.finish()
    };

    // Driver: evaluate f(x) for a Zipf-ish repeating argument pattern.
    let driver = {
        let mut f = pb.function("driver");
        let (memo_base, n, fut, result) = (Reg(0), Reg(1), Reg(2), Reg(3));
        let (i, x, entry, v, acc, zero) = (Reg(8), Reg(9), Reg(10), Reg(11), Reg(12), Reg(13));
        f.imm(i, 0).imm(acc, 0).imm(zero, 0);
        let top = f.label();
        let out = f.label();
        f.bind(top);
        f.bge_u(i, n, out);
        // Argument pattern with heavy reuse: x = (i*i) % 64.
        f.mul(x, i, i);
        f.andi(x, x, 63);
        f.muli(entry, x, 8);
        f.add(entry, entry, memo_base);
        f.st8(fut, 0, zero);
        f.st8(fut, 8, zero);
        f.invoke_future(entry, ActionId(0), &[x, fut], fut, Location::Remote);
        f.future_wait(v, fut);
        f.add(acc, acc, v);
        f.addi(i, i, 1);
        f.jmp(top);
        f.bind(out);
        f.st8(result, 0, acc);
        f.halt();
        f.finish()
    };
    let prog = Arc::new(pb.finish()?);

    let mut sys = System::try_new(SystemConfig::small())?;
    let action = sys.register_action(&prog, memo_eval);
    assert_eq!(action, ActionId(0));
    // The memo table is *phantom*: constructed zero (EMPTY) on insertion,
    // dropped on eviction, never touching DRAM.
    let memo = sys.register_morph(&MorphSpec::new("memo", 8, 64, MorphLevel::Llc));
    let fut = sys.alloc_future();
    let result = sys.alloc_raw(8, 8);
    let n = 512u64;
    sys.spawn_thread(0, &prog, driver, &[memo.actors.base, n, fut.addr, result])
        .unwrap();
    sys.run()?;

    let s = sys.stats();
    println!("evaluations requested: {n}");
    println!("offloaded lookups:     {}", s.invokes);
    println!(
        "engine instructions:   {} (~64 distinct args actually computed)",
        s.engine_instrs
    );
    println!("memo table DRAM accesses: 0 by construction (phantom)");
    println!("checksum: {:#x}", sys.read_u64(result));
    Ok(())
}
