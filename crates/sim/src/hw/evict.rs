//! Evict stage: private-hierarchy fills, victim handling, destructor
//! dispatch, and range flushes.
//!
//! Fills keep the hierarchy inclusive (L1 ⊆ L2 ⊆ LLC for cacheable data);
//! victims propagate dirty bits downward and, for destructor-tagged Morph
//! lines, hand the line to the engine's destructor action. Destructors
//! triggered from *within* an inline action are deferred to the engine's
//! actor buffer ([`Hw::dtor_or_queue`]) and drained iteratively, so
//! eviction cascades cannot recurse unboundedly.

use levi_isa::Addr;

use crate::cache::PrivState;
use crate::config::{LINE_SHIFT, LINE_SIZE};
use crate::engine::{EngineId, EngineLevel};
use crate::ndc::MorphLevel;
use crate::trace::{TraceCategory, TraceEvent, Track};

use super::phantom::m_action;
use super::{AccessKind, Hw, PendingDtor, DATA_MSG, INVAL_MSG};

impl Hw {
    pub(super) fn fill_l1(
        &mut self,
        _mem: &mut dyn levi_isa::Memory,
        tile: u32,
        line: u64,
        state: PrivState,
        kind: AccessKind,
        now: u64,
    ) {
        let t = tile as usize;
        if let Some(l) = self.l1[t].peek_mut(line) {
            l.state = state;
            if kind.wants_ownership() {
                l.dirty = true;
            }
            return;
        }
        let (l, victim) = self.l1[t].insert(line, &self.pins);
        l.state = state;
        l.dirty = kind.wants_ownership();
        if let Some(v) = victim {
            if v.dirty {
                // Write into the L2 copy.
                if let Some(l2l) = self.l2[t].peek_mut(v.line) {
                    l2l.dirty = true;
                } else {
                    // L2 already lost it; fold into LLC if present.
                    let bank = self.bank_of(v.line << LINE_SHIFT) as usize;
                    if let Some(ll) = self.llc[bank].peek_mut(v.line) {
                        ll.dirty = true;
                    }
                }
            }
        }
        let _ = now;
    }

    pub(super) fn fill_l2(
        &mut self,
        mem: &mut dyn levi_isa::Memory,
        tile: u32,
        line: u64,
        state: PrivState,
        kind: AccessKind,
        now: u64,
    ) {
        let t = tile as usize;
        if let Some(l) = self.l2[t].peek_mut(line) {
            l.state = state;
            if kind.wants_ownership() {
                l.dirty = true;
            }
            return;
        }
        let (l, victim) = self.l2[t].insert(line, &self.pins);
        l.state = state;
        l.dirty = kind.wants_ownership();
        if let Some(v) = victim {
            self.handle_l2_victim(mem, tile, v, now);
        }
    }

    /// Handles an L2 eviction: destructor-tagged lines run their Morph
    /// destructor on the tile's L2 engine; dirty lines write back to the
    /// LLC (or DRAM if the LLC no longer holds them).
    pub fn handle_l2_victim(
        &mut self,
        mem: &mut dyn levi_isa::Memory,
        tile: u32,
        victim: crate::cache::Line,
        now: u64,
    ) -> u64 {
        // Keep L1 inclusive with L2.
        let l1_dirty = self.l1[tile as usize]
            .invalidate(victim.line)
            .is_some_and(|l| l.dirty);
        let dirty = victim.dirty || l1_dirty;

        if victim.dtor {
            let eid = EngineId {
                tile,
                level: EngineLevel::L2,
            };
            return self.dtor_or_queue(mem, eid, victim.line, dirty, now, MorphLevel::L2, tile);
        }
        if dirty {
            // L2-level phantom data never leaves the private caches.
            if self
                .ndc
                .morph_at(victim.line << LINE_SHIFT)
                .is_some_and(|mi| self.ndc.morphs[mi].level == MorphLevel::L2)
            {
                return now;
            }
            self.stats.l2.writebacks += 1;
            let addr = victim.line << LINE_SHIFT;
            let bank = self.bank_of(addr);
            let t = self.noc.send(tile, bank, DATA_MSG, now, &mut self.stats);
            self.stats.llc.hits += 1; // writeback access at the bank
            if let Some(l) = self.llc[bank as usize].peek_mut(victim.line) {
                l.dirty = true;
                if l.owner == Some(tile as u8) {
                    l.owner = None;
                }
                l.sharers &= !(1u64 << tile);
                return t + self.cfg.llc.latency;
            }
            // Not in LLC (phantom or already evicted): write to DRAM.
            return self
                .dram
                .access_cache_line(&self.translator, victim.line, t, &mut self.stats);
        }
        now
    }

    /// Handles an LLC eviction: invalidates private copies (inclusion),
    /// invalidates the bank engine's L1d, runs destructors for
    /// destructor-tagged lines, and writes back dirty data.
    pub fn handle_llc_victim(
        &mut self,
        mem: &mut dyn levi_isa::Memory,
        bank: u32,
        victim: crate::cache::Line,
        now: u64,
    ) -> u64 {
        let mut t = now;
        let mut dirty = victim.dirty;
        // Inclusion: strip private copies.
        let mut mask = victim.sharers;
        if let Some(o) = victim.owner {
            mask |= 1 << o;
        }
        for s in 0..self.cfg.tiles {
            if mask & (1 << s) == 0 {
                continue;
            }
            let ta = self.noc.send(bank, s, INVAL_MSG, t, &mut self.stats);
            self.stats.invalidations += 1;
            dirty |= self.invalidate_private(s, victim.line);
            let line = victim.line;
            self.stats.trace.record(|| {
                TraceEvent::instant(
                    ta,
                    TraceCategory::Coherence,
                    "coh.inval",
                    Track::Core(s),
                    &[("line", line)],
                )
            });
            t = t.max(ta + self.cfg.l2.latency);
        }
        // The bank engine's L1d must not outlive the LLC copy (it would
        // see stale phantom data after a destructor runs).
        let eid = EngineId {
            tile: bank,
            level: EngineLevel::Llc,
        };
        self.engines[eid.index()].l1d.invalidate(victim.line);

        if victim.dtor {
            return self.dtor_or_queue(mem, eid, victim.line, dirty, t, MorphLevel::Llc, bank);
        }
        if dirty {
            // Phantom (Morph) data has no DRAM backing: a dirty phantom
            // line without a destructor is simply dropped.
            if self.ndc.morph_at(victim.line << LINE_SHIFT).is_some() {
                return t;
            }
            self.stats.llc.writebacks += 1;
            return self
                .dram
                .access_cache_line(&self.translator, victim.line, t, &mut self.stats);
        }
        t
    }

    /// Runs the Morph destructor(s) for an evicted line: one per object for
    /// sub-line objects, or a single destructor (after gathering all of the
    /// object's lines) for multi-line objects.
    #[allow(clippy::too_many_arguments)]
    fn run_dtors_for_line(
        &mut self,
        mem: &mut dyn levi_isa::Memory,
        eid: EngineId,
        line: u64,
        dirty: bool,
        now: u64,
        level: MorphLevel,
        home: u32,
    ) -> u64 {
        let addr = line << LINE_SHIFT;
        let Some(mi) = self.ndc.morph_at(addr) else {
            // Morph was unregistered; drop the line.
            return now;
        };
        let m = self.ndc.morphs[mi].clone();
        debug_assert_eq!(m.level, level);
        let Some(dtor) = m.dtor else {
            return now;
        };
        let mut t = now;
        if m.is_multiline() {
            // Evict the object's other lines too, then run one destructor.
            let obj = m.obj_base(addr);
            let lines = m.obj_size / LINE_SIZE;
            let mut any_dirty = dirty;
            for k in 0..lines {
                let l = (obj >> LINE_SHIFT) + k;
                if l == line {
                    continue;
                }
                match level {
                    MorphLevel::Llc => {
                        let b = self.bank_of(l << LINE_SHIFT);
                        if let Some(v) = self.llc[b as usize].invalidate(l) {
                            any_dirty |= v.dirty;
                            // Inclusion: strip private copies of the sibling.
                            let mut mask = v.sharers;
                            if let Some(o) = v.owner {
                                mask |= 1 << o;
                            }
                            for sh in 0..self.cfg.tiles {
                                if mask & (1 << sh) != 0 {
                                    any_dirty |= self.invalidate_private(sh, l);
                                    self.stats.invalidations += 1;
                                    self.stats.trace.record(|| {
                                        TraceEvent::instant(
                                            t,
                                            TraceCategory::Coherence,
                                            "coh.inval",
                                            Track::Core(sh),
                                            &[("line", l)],
                                        )
                                    });
                                }
                            }
                            let e2 = EngineId {
                                tile: b,
                                level: EngineLevel::Llc,
                            };
                            self.engines[e2.index()].l1d.invalidate(l);
                        }
                    }
                    MorphLevel::L2 => {
                        if let Some(v) = self.l2[home as usize].invalidate(l) {
                            any_dirty |= v.dirty;
                        }
                        self.l1[home as usize].invalidate(l);
                    }
                }
            }
            self.stats.dtor_actions += 1;
            let span = (obj, obj + m.obj_size.max(LINE_SIZE));
            t = self.run_inline_action(
                mem,
                eid,
                &m_action(&self.ndc, dtor),
                &[obj, m.view, any_dirty as u64],
                t,
                Some(span),
            );
        } else {
            // Sub-line objects: the scheduler runs all the line's object
            // destructors in parallel (FU limits still apply through the
            // engine cursors).
            let objs = LINE_SIZE / m.obj_size;
            let aref = m_action(&self.ndc, dtor);
            let mut t_max = now;
            for k in 0..objs {
                let obj = addr + k * m.obj_size;
                if obj >= m.bound {
                    break;
                }
                self.stats.dtor_actions += 1;
                let span = (addr, addr + LINE_SIZE);
                t_max = t_max.max(self.run_inline_action(
                    mem,
                    eid,
                    &aref,
                    &[obj, m.view, dirty as u64],
                    now,
                    Some(span),
                ));
            }
            t = t_max;
        }
        t
    }

    /// Iteratively runs all deferred destructors (each may defer more).
    pub(super) fn drain_pending_dtors(&mut self, mem: &mut dyn levi_isa::Memory) {
        while let Some(p) = self.pending_dtors.pop() {
            self.run_dtors_for_line(mem, p.eid, p.line, p.dirty, p.at, p.level, p.home);
        }
    }

    /// Flushes `[base, base+len)` from every cache, running destructors for
    /// tagged lines. Returns the completion time. Used by Morph
    /// unregistration (`flush` instruction).
    pub fn flush_range(
        &mut self,
        mem: &mut dyn levi_isa::Memory,
        base: Addr,
        len: u64,
        now: u64,
    ) -> u64 {
        let bound = base + len;
        let mut t = now;
        // Scratch arenas reused across calls. Taken (not borrowed) so the
        // victim handlers below can re-enter `flush_range` from inline
        // destructor actions — a nested call just sees empty arenas.
        let mut drained = std::mem::take(&mut self.scratch_lines);
        let mut l1_dirty = std::mem::take(&mut self.scratch_dirty);
        for tile in 0..self.cfg.tiles {
            self.l1[tile as usize].drain_range_into(base, bound, &mut drained);
            l1_dirty.clear();
            // `drained` is sorted by line, so `l1_dirty` is too: membership
            // below is a binary search.
            l1_dirty.extend(drained.iter().filter(|l| l.dirty).map(|l| l.line));
            self.l2[tile as usize].drain_range_into(base, bound, &mut drained);
            for v in &drained {
                let mut v = *v;
                v.dirty |= l1_dirty.binary_search(&v.line).is_ok();
                t = t.max(self.handle_l2_victim_flush(mem, tile, v, now));
            }
        }
        for bank in 0..self.cfg.tiles {
            self.llc[bank as usize].drain_range_into(base, bound, &mut drained);
            for v in &drained {
                t = t.max(self.handle_llc_victim(mem, bank, *v, now));
            }
            let eid = EngineId {
                tile: bank,
                level: EngineLevel::Llc,
            };
            self.engines[eid.index()]
                .l1d
                .drain_range_into(base, bound, &mut drained);
            let eid2 = EngineId {
                tile: bank,
                level: EngineLevel::L2,
            };
            self.engines[eid2.index()]
                .l1d
                .drain_range_into(base, bound, &mut drained);
        }
        drained.clear();
        l1_dirty.clear();
        self.scratch_lines = drained;
        self.scratch_dirty = l1_dirty;
        t
    }

    /// L2 victim handling for flush paths, where the L1 copy was already
    /// drained.
    fn handle_l2_victim_flush(
        &mut self,
        mem: &mut dyn levi_isa::Memory,
        tile: u32,
        victim: crate::cache::Line,
        now: u64,
    ) -> u64 {
        if victim.dtor {
            let eid = EngineId {
                tile,
                level: EngineLevel::L2,
            };
            return self.dtor_or_queue(
                mem,
                eid,
                victim.line,
                victim.dirty,
                now,
                MorphLevel::L2,
                tile,
            );
        }
        if victim.dirty {
            self.stats.l2.writebacks += 1;
        }
        now
    }

    /// Runs a victim's destructor(s) now, or — when already inside an
    /// inline action — defers them to the engine's actor buffer so
    /// eviction cascades resolve iteratively instead of recursively.
    #[allow(clippy::too_many_arguments)]
    fn dtor_or_queue(
        &mut self,
        mem: &mut dyn levi_isa::Memory,
        eid: EngineId,
        line: u64,
        dirty: bool,
        now: u64,
        level: MorphLevel,
        home: u32,
    ) -> u64 {
        if self.inline_depth > 0 {
            self.pending_dtors.push(PendingDtor {
                eid,
                line,
                dirty,
                at: now,
                level,
                home,
            });
            return now;
        }
        let mut t = self.run_dtors_for_line(mem, eid, line, dirty, now, level, home);
        while let Some(p) = self.pending_dtors.pop() {
            t = t.max(self.run_dtors_for_line(mem, p.eid, p.line, p.dirty, p.at, p.level, p.home));
        }
        t
    }
}
