//! Thin wrapper: `cargo bench --bench micro_substrate` dispatches to the `micro_substrate`
//! descriptor in the unified figure registry (`levi_bench::figures`),
//! which `levi-bench run micro_substrate` executes identically.

fn main() {
    levi_bench::runner::bench_main("micro_substrate");
}
