//! Ablation — multi-tenant NDC sharing (DESIGN.md §11).
//!
//! A deployed NDC fabric is shared: several independent jobs co-run on
//! one machine and contend for the LLC and the invoke engines. levi-xlat
//! splits the tiles into equal tenant blocks and compares isolation
//! policies — free interference, LLC way-partitioning, and engine-slot
//! quotas — against the single-tenant baseline. The per-tenant finish
//! spread is the fairness signal: unpartitioned sharing lets one tenant
//! drag the others.

use levi_sim::{TenantConfig, TenantPolicy};
use levi_workloads::hashtable::{run_hashtable_with, HtScale, HtVariant};

use crate::runner::{Figure, RunCtx};
use crate::{header, table_report, Sweep};

/// The figure descriptor.
pub const FIG: Figure = Figure {
    id: "ablation_tenancy",
    about: "multi-tenant LLC/engine sharing policies vs. a single tenant",
    workloads: &["hashtable"],
    run,
};

fn run(ctx: &RunCtx) {
    header(
        "Ablation — multi-tenant NDC sharing policies",
        "4 tenants share the LLC and invoke engines under pluggable policies",
    );
    let mut scale = if ctx.quick {
        HtScale::test(24)
    } else {
        HtScale::paper(24)
    };
    // Size the table at 2-4x the aggregate LLC so tenants actually
    // contend for sets and the partition changes victim choices.
    scale = scale.with_table_bytes(if ctx.quick { 16 << 20 } else { 32 << 20 });

    let jobs: &[(&str, Option<TenantPolicy>)] = &[
        ("single tenant", None),
        ("4x unpartitioned", Some(TenantPolicy::Unpartitioned)),
        ("4x LLC way-partition", Some(TenantPolicy::LlcWayPartition)),
        ("4x engine-slot quota", Some(TenantPolicy::EngineSlotQuota)),
    ];
    let env = &ctx.env;
    let scale_ref = &scale;
    let results = Sweep::new()
        .variants(jobs.iter().map(|&(name, policy)| (name, policy)))
        .run(|_, &policy| {
            run_hashtable_with(HtVariant::Leviathan, scale_ref, |cfg| {
                cfg.machine.tenants = policy.map(|p| TenantConfig::new(4, p));
                env.customize(cfg);
            })
        });
    let mut rows = Vec::new();
    for (name, r) in &results {
        crate::progressln!("  ran {name}");
        let s = &r.metrics.stats;
        let spread = match (
            s.tenant_finish.iter().max(),
            s.tenant_finish.iter().filter(|&&f| f > 0).min(),
        ) {
            (Some(&max), Some(&min)) if max > 0 => (max - min).to_string(),
            _ => "-".to_string(),
        };
        rows.push(vec![
            name.to_string(),
            r.metrics.cycles.to_string(),
            s.llc.misses.to_string(),
            s.tenant_quota_nacks.to_string(),
            spread,
        ]);
    }
    table_report(
        "ablation_tenancy",
        &[
            "config",
            "cycles",
            "LLC misses",
            "quota NACKs",
            "finish spread",
        ],
        &rows,
    );
    crate::outln!();
    crate::outln!("Finish spread = latest minus earliest per-tenant core finish cycle;");
    crate::outln!("partitioning trades peak throughput for inter-tenant isolation.");
}
