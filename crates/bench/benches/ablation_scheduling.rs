//! Thin wrapper: `cargo bench --bench ablation_scheduling` dispatches to the `ablation_scheduling`
//! descriptor in the unified figure registry (`levi_bench::figures`),
//! which `levi-bench run ablation_scheduling` executes identically.

fn main() {
    levi_bench::runner::bench_main("ablation_scheduling");
}
