//! Golden validation of the span-linked Chrome/Perfetto export and the
//! telemetry JSON-lines dump.
//!
//! A seeded invoke workload runs with span tracing on; both exports are
//! then parsed with the bench harness's strict JSON parser (`levi-bench`
//! rejects duplicate keys and trailing garbage), and the span flow
//! arrows are checked for well-formedness: every multi-event span opens
//! with exactly one `"s"` and closes with exactly one `"f"` (carrying
//! `"bp":"e"`), with one flow step per span-linked event.

use std::collections::BTreeMap;
use std::sync::Arc;

use levi_bench::json::{parse, Json};
use levi_isa::{ActionId, Location, ProgramBuilder, Reg};
use levi_sim::{Machine, MachineConfig, Stats, Telemetry};

const INVOKES: u64 = 64;

/// Runs the standard 64-invoke counter-bump workload with span tracing.
fn run_traced() -> Stats {
    let mut pb = ProgramBuilder::new();
    {
        let mut f = pb.function("bump");
        let (actor, one, old) = (Reg(0), Reg(1), Reg(2));
        f.imm(one, 1);
        f.rmw_relaxed(
            levi_isa::RmwOp::Add,
            old,
            actor,
            one,
            levi_isa::MemWidth::B8,
        );
        f.halt();
        f.finish();
    }
    let main = {
        let mut f = pb.function("main");
        let (actor, i, nn) = (Reg(0), Reg(1), Reg(2));
        f.imm(i, 0).imm(nn, INVOKES);
        let top = f.label();
        let out = f.label();
        f.bind(top);
        f.bge_u(i, nn, out);
        f.invoke(actor, ActionId(0), &[], Location::Remote);
        f.addi(i, i, 1);
        f.jmp(top);
        f.bind(out);
        f.halt();
        f.finish()
    };
    let prog = Arc::new(pb.finish().unwrap());
    let mut cfg = MachineConfig::with_tiles(4).span_traced();
    cfg.prefetcher = false;
    let mut m = Machine::try_new(cfg).unwrap();
    let action_fn = prog.func_by_name("bump").unwrap();
    m.hw.ndc
        .actions
        .register(ActionId(0), prog.clone(), action_fn);
    m.spawn_thread(0, prog, main, &[0x4040]).unwrap();
    m.run().unwrap();
    m.stats().clone()
}

#[test]
fn chrome_export_is_wellformed_and_flow_linked() {
    let stats = run_traced();
    assert_eq!(stats.spans.len() as u64, INVOKES, "one span per invoke");
    assert_eq!(stats.spans.dropped(), 0);

    let text = stats.trace.to_chrome_json();
    let doc = parse(&text).expect("chrome export survives the strict parser");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    // Per flow id: (opens, steps, closes). Per span id: linked events.
    let mut flow: BTreeMap<u64, (u32, u32, u32)> = BTreeMap::new();
    let mut linked: BTreeMap<u64, u32> = BTreeMap::new();
    for e in events {
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .expect("every event has a phase");
        assert!(
            e.get("name").and_then(Json::as_str).is_some(),
            "every event has a name"
        );
        match ph {
            "M" => {}
            "s" | "t" | "f" => {
                assert_eq!(e.get("cat").and_then(Json::as_str), Some("span.flow"));
                assert!(e.get("ts").and_then(Json::as_num).is_some());
                let id = e.get("id").and_then(Json::as_num).expect("flow id") as u64;
                let c = flow.entry(id).or_default();
                match ph {
                    "s" => c.0 += 1,
                    "t" => c.1 += 1,
                    _ => {
                        c.2 += 1;
                        assert_eq!(
                            e.get("bp").and_then(Json::as_str),
                            Some("e"),
                            "closing flow events bind to the enclosing slice"
                        );
                    }
                }
            }
            "X" | "i" => {
                assert!(e.get("ts").and_then(Json::as_num).is_some());
                if let Some(span) = e
                    .get("args")
                    .and_then(|a| a.get("span"))
                    .and_then(Json::as_num)
                {
                    *linked.entry(span as u64).or_default() += 1;
                }
            }
            other => panic!("unexpected event phase {other:?}"),
        }
    }

    assert!(!flow.is_empty(), "a span-traced run must emit flow arrows");
    for (id, (opens, steps, closes)) in &flow {
        assert_eq!(
            (*opens, *closes),
            (1, 1),
            "span {id}: flow must open and close exactly once"
        );
        let total = linked.get(id).copied().unwrap_or(0);
        assert!(total >= 2, "span {id}: arrows need at least two events");
        assert_eq!(
            opens + steps + closes,
            total,
            "span {id}: one flow step per span-linked event"
        );
    }
    for (id, n) in &linked {
        if *n < 2 {
            assert!(
                !flow.contains_key(id),
                "span {id}: singletons must not emit arrows"
            );
        }
    }
    assert!(
        text.contains("\"name\":\"span.issued\""),
        "issued stage events present"
    );
}

#[test]
fn stats_display_reports_critical_path() {
    let stats = run_traced();
    let text = format!("{stats}");
    assert!(text.contains("invoke spans:"), "{text}");
    assert!(text.contains("span stages:"), "{text}");
    assert!(
        text.contains("offload") && text.contains("response"),
        "{text}"
    );
    assert_eq!(
        text.matches("  slow #").count(),
        levi_sim::TOP_SLOW_INVOKES,
        "top-5 slowest invokes listed: {text}"
    );

    // Off by default: a plain config prints none of this.
    let plain = levi_sim::Stats::new();
    let plain_text = format!("{plain}");
    assert!(!plain_text.contains("invoke spans:"));
    assert!(!plain_text.contains("trace dropped:"));
}

#[test]
fn telemetry_jsonl_parses_line_by_line() {
    let stats = run_traced();
    let dump = Telemetry::new(&stats).to_jsonl("test/chrome_export");
    let mut lines = dump.lines();
    let header = parse(lines.next().expect("nonempty dump")).expect("header parses");
    let meta = header.get("telemetry").expect("header line");
    assert_eq!(meta.get("version").and_then(Json::as_num), Some(1.0));
    assert_eq!(
        meta.get("scope").and_then(Json::as_str),
        Some("test/chrome_export")
    );

    let mut spans_recorded = None;
    let mut slow_invokes = 0;
    for line in lines {
        let doc = parse(line).unwrap_or_else(|e| panic!("bad line {line:?}: {e}"));
        if doc.get("metric").and_then(Json::as_str) == Some("spans_recorded") {
            spans_recorded = doc.get("value").and_then(Json::as_num);
        }
        if doc.get("slow_invoke").is_some() {
            slow_invokes += 1;
        }
    }
    assert_eq!(spans_recorded, Some(INVOKES as f64));
    assert_eq!(slow_invokes, levi_sim::TOP_SLOW_INVOKES);
}
