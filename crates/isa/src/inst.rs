//! LevIR instruction definitions.
//!
//! LevIR is a load/store register machine with 64 general-purpose 64-bit
//! registers per context, plus the near-data computing (NDC) instructions
//! that Leviathan adds to the baseline ISA (paper Sec. VI, Table III).

use std::fmt;

use crate::program::{ActionId, FuncId};

/// Number of architectural registers per execution context.
pub const NUM_REGS: usize = 64;

/// A 64-bit virtual address. The reproduction uses a flat address space
/// (virtual = physical); paging is modeled only as TLB/rTLB latency and area.
pub type Addr = u64;

/// A general-purpose register identifier (`r0`..`r63`).
///
/// By convention, function arguments are passed in `r0..r7` and a single
/// return value is produced in `r0`. There are no callee-saved registers;
/// LevIR functions are small, and builders allocate registers explicitly.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u8);

impl Reg {
    /// Register holding the first argument / return value.
    pub const RET: Reg = Reg(0);

    /// Returns the register index as a `usize` for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A branch target within a function.
///
/// Labels are created and bound by [`crate::FunctionBuilder`]; by the time a
/// [`crate::Program`] is finished every label has been resolved to an
/// instruction index, so `Label` values inside a validated program are plain
/// instruction offsets.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(pub u32);

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Integer ALU operations.
///
/// All operations are 64-bit. Division and remainder are unsigned and treat
/// division by zero as producing `u64::MAX` / the dividend respectively
/// (matching RISC-V semantics) rather than trapping.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication (low 64 bits).
    Mul,
    /// Unsigned division (`x / 0 == u64::MAX`).
    DivU,
    /// Unsigned remainder (`x % 0 == x`).
    RemU,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (shift amount masked to 6 bits).
    Shl,
    /// Logical shift right (shift amount masked to 6 bits).
    Shr,
    /// Arithmetic shift right (shift amount masked to 6 bits).
    Sar,
    /// Set if less-than, signed (`1` or `0`).
    SltS,
    /// Set if less-than, unsigned (`1` or `0`).
    SltU,
    /// Set if equal (`1` or `0`).
    Seq,
    /// Set if not equal (`1` or `0`).
    Sne,
    /// Unsigned minimum.
    MinU,
    /// Unsigned maximum.
    MaxU,
}

impl AluOp {
    /// Applies the operation to two operand values.
    #[inline]
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::DivU => a.checked_div(b).unwrap_or(u64::MAX),
            AluOp::RemU => a.checked_rem(b).unwrap_or(a),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a << (b & 63),
            AluOp::Shr => a >> (b & 63),
            AluOp::Sar => ((a as i64) >> (b & 63)) as u64,
            AluOp::SltS => ((a as i64) < (b as i64)) as u64,
            AluOp::SltU => (a < b) as u64,
            AluOp::Seq => (a == b) as u64,
            AluOp::Sne => (a != b) as u64,
            AluOp::MinU => a.min(b),
            AluOp::MaxU => a.max(b),
        }
    }
}

/// Branch conditions for [`Inst::Br`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BrCond {
    /// Branch if equal.
    Eq,
    /// Branch if not equal.
    Ne,
    /// Branch if less-than, signed.
    LtS,
    /// Branch if less-than, unsigned.
    LtU,
    /// Branch if greater-or-equal, signed.
    GeS,
    /// Branch if greater-or-equal, unsigned.
    GeU,
}

impl BrCond {
    /// Evaluates the condition on two operand values.
    #[inline]
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            BrCond::Eq => a == b,
            BrCond::Ne => a != b,
            BrCond::LtS => (a as i64) < (b as i64),
            BrCond::LtU => a < b,
            BrCond::GeS => (a as i64) >= (b as i64),
            BrCond::GeU => a >= b,
        }
    }
}

/// Memory access width, in bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MemWidth {
    /// 1 byte.
    B1,
    /// 2 bytes.
    B2,
    /// 4 bytes.
    B4,
    /// 8 bytes.
    B8,
}

impl MemWidth {
    /// Number of bytes accessed.
    #[inline]
    pub fn bytes(self) -> u64 {
        match self {
            MemWidth::B1 => 1,
            MemWidth::B2 => 2,
            MemWidth::B4 => 4,
            MemWidth::B8 => 8,
        }
    }

    /// Truncates a 64-bit value to this width (zero-extending back to u64).
    #[inline]
    pub fn truncate(self, v: u64) -> u64 {
        match self {
            MemWidth::B1 => v & 0xFF,
            MemWidth::B2 => v & 0xFFFF,
            MemWidth::B4 => v & 0xFFFF_FFFF,
            MemWidth::B8 => v,
        }
    }

    /// Sign-extends a value of this width to 64 bits.
    #[inline]
    pub fn sign_extend(self, v: u64) -> u64 {
        match self {
            MemWidth::B1 => v as u8 as i8 as i64 as u64,
            MemWidth::B2 => v as u16 as i16 as i64 as u64,
            MemWidth::B4 => v as u32 as i32 as i64 as u64,
            MemWidth::B8 => v,
        }
    }
}

/// Atomic read-modify-write operations for [`Inst::AtomicRmw`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RmwOp {
    /// Fetch-and-add.
    Add,
    /// Fetch-and-AND.
    And,
    /// Fetch-and-OR.
    Or,
    /// Fetch-and-XOR.
    Xor,
    /// Fetch-and-minimum (unsigned).
    MinU,
    /// Fetch-and-maximum (unsigned).
    MaxU,
    /// Atomic exchange.
    Xchg,
}

impl RmwOp {
    /// Computes the new memory value from the old value and the operand.
    #[inline]
    pub fn apply(self, old: u64, operand: u64) -> u64 {
        match self {
            RmwOp::Add => old.wrapping_add(operand),
            RmwOp::And => old & operand,
            RmwOp::Or => old | operand,
            RmwOp::Xor => old ^ operand,
            RmwOp::MinU => old.min(operand),
            RmwOp::MaxU => old.max(operand),
            RmwOp::Xchg => operand,
        }
    }
}

/// Memory-ordering strength of an atomic operation.
///
/// `Fenced` atomics drain all outstanding memory accesses before and after
/// the operation (the x86-like default the paper's baselines pay for);
/// `Relaxed` atomics are the free-running variant that tākō must assume
/// cores support (Sec. IV-D).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MemOrder {
    /// Fully fenced (sequentially-consistent-ish; serializes the core).
    Fenced,
    /// Relaxed (no ordering; only the RMW itself is atomic).
    Relaxed,
}

/// Where an offloaded task should execute (paper Sec. V-B1).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Location {
    /// The invoker's local engine.
    Local,
    /// The engine near the object's LLC bank.
    Remote,
    /// Probe down the hierarchy and execute near wherever the object
    /// currently resides (the default).
    #[default]
    Dynamic,
}

/// A single LevIR instruction.
///
/// The NDC instructions (`Invoke`, `FutureWait`, `FutureSend`, `Push`,
/// `Pop`, `Flush`) are interpreted by an [`crate::NdcHost`]; everything else
/// has self-contained semantics in [`crate::exec::step`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Inst {
    /// Load a 64-bit immediate: `rd = val`.
    Imm {
        /// Destination register.
        rd: Reg,
        /// Immediate value (stored sign-agnostically as the raw bits).
        val: u64,
    },
    /// Register move: `rd = rs`.
    Mov {
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs: Reg,
    },
    /// Register-register ALU operation: `rd = op(ra, rb)`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// First source register.
        ra: Reg,
        /// Second source register.
        rb: Reg,
    },
    /// Register-immediate ALU operation: `rd = op(ra, imm)`.
    AluI {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// Source register.
        ra: Reg,
        /// Immediate operand.
        imm: u64,
    },
    /// Load: `rd = mem[ra + off]`, zero- or sign-extended.
    Ld {
        /// Destination register.
        rd: Reg,
        /// Base address register.
        ra: Reg,
        /// Byte offset added to the base.
        off: i32,
        /// Access width.
        width: MemWidth,
        /// If true, sign-extend the loaded value to 64 bits.
        sext: bool,
    },
    /// Store: `mem[ra + off] = rs` (truncated to `width`).
    St {
        /// Source register whose value is stored.
        rs: Reg,
        /// Base address register.
        ra: Reg,
        /// Byte offset added to the base.
        off: i32,
        /// Access width.
        width: MemWidth,
    },
    /// Conditional branch to `target` if `cond(ra, rb)`.
    Br {
        /// Condition to evaluate.
        cond: BrCond,
        /// First source register.
        ra: Reg,
        /// Second source register.
        rb: Reg,
        /// Branch target.
        target: Label,
    },
    /// Unconditional jump to `target`.
    Jmp {
        /// Jump target.
        target: Label,
    },
    /// Call a function in the same program. Arguments must already be in
    /// `r0..r7`; the callee's return value appears in `r0`.
    Call {
        /// Callee.
        func: FuncId,
    },
    /// Return from the current function (or finish the context if the call
    /// stack is empty).
    Ret,
    /// Finish the context unconditionally.
    Halt,
    /// No operation (occupies an issue slot).
    Nop,
    /// Atomic read-modify-write: `rd = mem[addr]; mem[addr] = op(rd, rv)`.
    AtomicRmw {
        /// RMW operation.
        op: RmwOp,
        /// Destination register receiving the *old* value.
        rd: Reg,
        /// Register holding the target address.
        addr: Reg,
        /// Register holding the operand.
        rv: Reg,
        /// Access width.
        width: MemWidth,
        /// Fenced or relaxed ordering.
        ordering: MemOrder,
    },
    /// Full memory fence: drains all outstanding accesses.
    Fence,
    /// Offload a task: execute `action` on the actor pointed to by `actor`
    /// (paper Fig. 9, Sec. VI-B1).
    Invoke {
        /// Register holding the actor (object) pointer.
        actor: Reg,
        /// Which registered action to run.
        action: ActionId,
        /// Argument registers (passed as the action's `r1..`; `r0` receives
        /// the actor pointer).
        args: Vec<Reg>,
        /// Register holding a future address to fill with the action's
        /// return value, if any. Invokes with a future skip the invoke
        /// buffer (Sec. VI-B1).
        future: Option<Reg>,
        /// Placement directive.
        loc: Location,
        /// EXCLUSIVE (write-intent) hint for DYNAMIC scheduling.
        exclusive: bool,
    },
    /// Block until the future at address `rf` is filled, then `rd = value`.
    FutureWait {
        /// Destination register.
        rd: Reg,
        /// Register holding the future's address.
        rf: Reg,
    },
    /// Fill the future at address `rf` with `rv` (the `store-update` of
    /// Sec. VI-A2), waking any waiter.
    FutureSend {
        /// Register holding the future's address.
        rf: Reg,
        /// Register holding the value to send.
        rv: Reg,
    },
    /// Producer side of a stream: append the value in `rs` to the stream
    /// whose handle is in `stream`; blocks while the buffer is full.
    Push {
        /// Register holding the stream handle.
        stream: Reg,
        /// Register holding the value to push.
        rs: Reg,
    },
    /// Consumer side of a stream: retire one entry (bump the head pointer).
    /// The entry's *data* is read with ordinary loads from the stream's
    /// phantom range before popping (paper Sec. V-B3).
    Pop {
        /// Register holding the stream handle.
        stream: Reg,
    },
    /// Flush a Morph's address range from the caches (used on unregister).
    Flush {
        /// Register holding the range base address.
        addr: Reg,
        /// Register holding the range length in bytes.
        len: Reg,
    },
    /// Emit a debug trace of a register value (no architectural effect).
    Trace {
        /// Register to trace.
        rs: Reg,
    },
}

/// Coarse classification of instructions used by the timing models to pick
/// latencies and functional-unit types.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InstClass {
    /// Simple integer op (1-cycle FU).
    Int,
    /// Integer multiply.
    Mul,
    /// Integer divide.
    Div,
    /// Memory access (load/store/atomic/push/pop — uses a memory FU).
    Mem,
    /// Control flow (branch/jump/call/ret).
    Ctrl,
    /// NDC bookkeeping (invoke, future ops, flush, fence).
    Ndc,
}

impl Inst {
    /// Returns the timing class of this instruction.
    pub fn class(&self) -> InstClass {
        match self {
            Inst::Imm { .. } | Inst::Mov { .. } | Inst::Nop | Inst::Trace { .. } => InstClass::Int,
            Inst::Alu { op, .. } | Inst::AluI { op, .. } => match op {
                AluOp::Mul => InstClass::Mul,
                AluOp::DivU | AluOp::RemU => InstClass::Div,
                _ => InstClass::Int,
            },
            Inst::Ld { .. } | Inst::St { .. } | Inst::AtomicRmw { .. } => InstClass::Mem,
            Inst::Push { .. } | Inst::Pop { .. } => InstClass::Mem,
            Inst::Br { .. } | Inst::Jmp { .. } | Inst::Call { .. } | Inst::Ret | Inst::Halt => {
                InstClass::Ctrl
            }
            Inst::Invoke { .. }
            | Inst::FutureWait { .. }
            | Inst::FutureSend { .. }
            | Inst::Flush { .. }
            | Inst::Fence => InstClass::Ndc,
        }
    }

    /// Visits every register this instruction reads.
    pub fn for_each_use(&self, mut f: impl FnMut(Reg)) {
        match self {
            Inst::Imm { .. } | Inst::Jmp { .. } | Inst::Call { .. } => {}
            Inst::Ret | Inst::Halt | Inst::Nop | Inst::Fence => {}
            Inst::Mov { rs, .. } => f(*rs),
            Inst::Alu { ra, rb, .. } => {
                f(*ra);
                f(*rb);
            }
            Inst::AluI { ra, .. } => f(*ra),
            Inst::Ld { ra, .. } => f(*ra),
            Inst::St { rs, ra, .. } => {
                f(*rs);
                f(*ra);
            }
            Inst::Br { ra, rb, .. } => {
                f(*ra);
                f(*rb);
            }
            Inst::AtomicRmw { addr, rv, .. } => {
                f(*addr);
                f(*rv);
            }
            Inst::Invoke {
                actor,
                args,
                future,
                ..
            } => {
                f(*actor);
                for a in args {
                    f(*a);
                }
                if let Some(rf) = future {
                    f(*rf);
                }
            }
            Inst::FutureWait { rf, .. } => f(*rf),
            Inst::FutureSend { rf, rv } => {
                f(*rf);
                f(*rv);
            }
            Inst::Push { stream, rs } => {
                f(*stream);
                f(*rs);
            }
            Inst::Pop { stream } => f(*stream),
            Inst::Flush { addr, len } => {
                f(*addr);
                f(*len);
            }
            Inst::Trace { rs } => f(*rs),
        }
    }

    /// Returns the register this instruction writes, if any.
    pub fn def(&self) -> Option<Reg> {
        match self {
            Inst::Imm { rd, .. }
            | Inst::Mov { rd, .. }
            | Inst::Alu { rd, .. }
            | Inst::AluI { rd, .. }
            | Inst::Ld { rd, .. }
            | Inst::AtomicRmw { rd, .. }
            | Inst::FutureWait { rd, .. } => Some(*rd),
            _ => None,
        }
    }

    /// True if this instruction may transfer control (branch/jump/call/ret).
    pub fn is_control(&self) -> bool {
        matches!(self.class(), InstClass::Ctrl)
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Imm { rd, val } => write!(f, "imm   {rd}, {val:#x}"),
            Inst::Mov { rd, rs } => write!(f, "mov   {rd}, {rs}"),
            Inst::Alu { op, rd, ra, rb } => write!(f, "{op:<5?} {rd}, {ra}, {rb}"),
            Inst::AluI { op, rd, ra, imm } => write!(f, "{op:<5?} {rd}, {ra}, {imm:#x}"),
            Inst::Ld {
                rd,
                ra,
                off,
                width,
                sext,
            } => write!(
                f,
                "ld{}{}  {rd}, [{ra}{off:+}]",
                width.bytes(),
                if *sext { "s" } else { " " }
            ),
            Inst::St { rs, ra, off, width } => {
                write!(f, "st{}   [{ra}{off:+}], {rs}", width.bytes())
            }
            Inst::Br {
                cond,
                ra,
                rb,
                target,
            } => write!(f, "b{cond:<4?} {ra}, {rb}, {target:?}"),
            Inst::Jmp { target } => write!(f, "jmp   {target:?}"),
            Inst::Call { func } => write!(f, "call  f{}", func.0),
            Inst::Ret => write!(f, "ret"),
            Inst::Halt => write!(f, "halt"),
            Inst::Nop => write!(f, "nop"),
            Inst::AtomicRmw {
                op,
                rd,
                addr,
                rv,
                width,
                ordering,
            } => write!(
                f,
                "rmw.{op:?}.{} {rd}, [{addr}], {rv} ({ordering:?})",
                width.bytes()
            ),
            Inst::Fence => write!(f, "fence"),
            Inst::Invoke {
                actor,
                action,
                args,
                future,
                loc,
                exclusive,
            } => {
                write!(
                    f,
                    "invoke[{loc:?}{}] a{} on {actor} (",
                    if *exclusive { ",EXCL" } else { "" },
                    action.0
                )?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")?;
                if let Some(rf) = future {
                    write!(f, " -> fut {rf}")?;
                }
                Ok(())
            }
            Inst::FutureWait { rd, rf } => write!(f, "fwait {rd}, [{rf}]"),
            Inst::FutureSend { rf, rv } => write!(f, "fsend [{rf}], {rv}"),
            Inst::Push { stream, rs } => write!(f, "push  s[{stream}], {rs}"),
            Inst::Pop { stream } => write!(f, "pop   s[{stream}]"),
            Inst::Flush { addr, len } => write!(f, "flush [{addr}], {len}"),
            Inst::Trace { rs } => write!(f, "trace {rs}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_ops_basic() {
        assert_eq!(AluOp::Add.apply(2, 3), 5);
        assert_eq!(AluOp::Sub.apply(2, 3), u64::MAX);
        assert_eq!(AluOp::Mul.apply(3, 4), 12);
        assert_eq!(AluOp::DivU.apply(7, 2), 3);
        assert_eq!(AluOp::DivU.apply(7, 0), u64::MAX);
        assert_eq!(AluOp::RemU.apply(7, 2), 1);
        assert_eq!(AluOp::RemU.apply(7, 0), 7);
        assert_eq!(AluOp::SltS.apply(u64::MAX, 0), 1, "-1 < 0 signed");
        assert_eq!(AluOp::SltU.apply(u64::MAX, 0), 0);
        assert_eq!(AluOp::Sar.apply(u64::MAX, 8), u64::MAX);
        assert_eq!(AluOp::Shr.apply(u64::MAX, 63), 1);
        assert_eq!(AluOp::MinU.apply(3, 9), 3);
        assert_eq!(AluOp::MaxU.apply(3, 9), 9);
    }

    #[test]
    fn branch_conditions() {
        assert!(BrCond::Eq.eval(4, 4));
        assert!(BrCond::Ne.eval(4, 5));
        assert!(BrCond::LtS.eval(u64::MAX, 0));
        assert!(!BrCond::LtU.eval(u64::MAX, 0));
        assert!(BrCond::GeU.eval(u64::MAX, 0));
        assert!(!BrCond::GeS.eval(u64::MAX, 0));
    }

    #[test]
    fn mem_width_extension() {
        assert_eq!(MemWidth::B1.truncate(0x1FF), 0xFF);
        assert_eq!(MemWidth::B1.sign_extend(0x80), 0xFFFF_FFFF_FFFF_FF80);
        assert_eq!(MemWidth::B2.sign_extend(0x7FFF), 0x7FFF);
        assert_eq!(MemWidth::B4.sign_extend(0x8000_0000), 0xFFFF_FFFF_8000_0000);
        assert_eq!(MemWidth::B8.bytes(), 8);
    }

    #[test]
    fn rmw_ops() {
        assert_eq!(RmwOp::Add.apply(10, 5), 15);
        assert_eq!(RmwOp::Xchg.apply(10, 5), 5);
        assert_eq!(RmwOp::MinU.apply(10, 5), 5);
        assert_eq!(RmwOp::MaxU.apply(10, 5), 10);
        assert_eq!(RmwOp::And.apply(0b1100, 0b1010), 0b1000);
        assert_eq!(RmwOp::Or.apply(0b1100, 0b1010), 0b1110);
        assert_eq!(RmwOp::Xor.apply(0b1100, 0b1010), 0b0110);
    }

    #[test]
    fn def_use_accounting() {
        let i = Inst::Alu {
            op: AluOp::Add,
            rd: Reg(1),
            ra: Reg(2),
            rb: Reg(3),
        };
        assert_eq!(i.def(), Some(Reg(1)));
        let mut uses = vec![];
        i.for_each_use(|r| uses.push(r));
        assert_eq!(uses, vec![Reg(2), Reg(3)]);

        let st = Inst::St {
            rs: Reg(4),
            ra: Reg(5),
            off: 8,
            width: MemWidth::B8,
        };
        assert_eq!(st.def(), None);
        let mut uses = vec![];
        st.for_each_use(|r| uses.push(r));
        assert_eq!(uses, vec![Reg(4), Reg(5)]);
    }

    #[test]
    fn classes() {
        assert_eq!(Inst::Nop.class(), InstClass::Int);
        assert_eq!(
            Inst::AluI {
                op: AluOp::Mul,
                rd: Reg(0),
                ra: Reg(0),
                imm: 2
            }
            .class(),
            InstClass::Mul
        );
        assert_eq!(Inst::Ret.class(), InstClass::Ctrl);
        assert_eq!(Inst::Fence.class(), InstClass::Ndc);
        assert_eq!(
            Inst::Pop { stream: Reg(1) }.class(),
            InstClass::Mem,
            "stream ops occupy memory FUs"
        );
    }

    #[test]
    fn display_formats() {
        let i = Inst::Imm {
            rd: Reg(3),
            val: 16,
        };
        assert_eq!(format!("{i}"), "imm   r3, 0x10");
        let b = Inst::Br {
            cond: BrCond::LtU,
            ra: Reg(1),
            rb: Reg(2),
            target: Label(7),
        };
        assert!(format!("{b}").contains("L7"));
    }
}
