//! Fig. 25 — sensitivity to system size (hash table).
//!
//! Paper: Leviathan's advantage grows with tile count — bigger meshes
//! mean longer round trips for the baseline's per-node fetches, while the
//! offloaded chain walk pays one hop per node.

use levi_bench::{header, quick_mode, table};
use levi_workloads::hashtable::{run_hashtable, HtScale, HtVariant};

fn main() {
    header(
        "Fig. 25 — hash-table sensitivity to tile count",
        "paper: benefit grows with system size (NoC savings dominate)",
    );
    let tiles_list: &[u32] = if quick_mode() {
        &[4, 8]
    } else {
        &[4, 8, 16, 32, 64]
    };
    let mut rows = Vec::new();
    for &tiles in tiles_list {
        let mut scale = if quick_mode() {
            HtScale::test(64)
        } else {
            HtScale::paper(64)
        };
        scale.tiles = tiles;
        let base = run_hashtable(HtVariant::Baseline, &scale);
        let lev = run_hashtable(HtVariant::Leviathan, &scale);
        eprintln!("  ran tiles={tiles}");
        rows.push(vec![
            tiles.to_string(),
            format!(
                "{:.2}x",
                base.metrics.cycles as f64 / lev.metrics.cycles as f64
            ),
            base.metrics.stats.noc_flit_hops.to_string(),
            lev.metrics.stats.noc_flit_hops.to_string(),
        ]);
    }
    table(
        &[
            "tiles",
            "Leviathan speedup",
            "base flit-hops",
            "lev flit-hops",
        ],
        &rows,
    );
}
