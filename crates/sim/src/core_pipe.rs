//! The core/engine issue pipeline: single-instruction execution with
//! timing.
//!
//! [`step_one`] executes exactly one instruction of an actor functionally
//! (via [`levi_isa::exec::step`]) while charging its timing against the
//! scoreboard: operand-ready cycles per register, an issue-width or FU
//! cursor slot, MSHR-limited memory-level parallelism ([`mshr_limit`]),
//! fence drains, branch-predictor outcomes, and the hierarchy walk for
//! memory operations. NDC instructions are delegated to the timed host in
//! [`crate::ndc_host`]; the scheduler in [`crate::sched`] interprets the
//! returned [`StepOutcome`].

use std::sync::Arc;

use levi_isa::{exec, Control, Inst, InstClass, MemOrder, PagedMem, Program};

use crate::hw::{AccessKind, Hw, Walk};
use crate::ndc::{StreamMode, WaitCond};
use crate::ndc_host::{NoBlockHost, SpawnReq, TimedHost};
use crate::sched::Actor;

/// Everything [`step_one`] needs besides the actor itself. Kept as a
/// struct of disjoint borrows so the scheduler can hold `&mut Actor`
/// alongside it.
pub(crate) struct StepEnv<'a> {
    pub(crate) hw: &'a mut Hw,
    pub(crate) mem: &'a mut PagedMem,
    pub(crate) traces: &'a mut Vec<u64>,
    pub(crate) is_core: bool,
    pub(crate) tile: u32,
    pub(crate) engine: Option<crate::engine::EngineId>,
    pub(crate) prog: &'a Arc<Program>,
}

/// What the scheduler should do with the actor after one instruction.
pub(crate) enum StepOutcome {
    Continue,
    Finished,
    /// Produced by the quantum check: requeue at the given cycle.
    Yield(u64),
    Park(WaitCond),
    SleepUntil(u64),
}

/// Executes one instruction of `a` with issue slot `slot`; returns the
/// outcome. Kept as a free function so borrows of the machine's fields
/// stay disjoint.
#[allow(clippy::too_many_lines)]
pub(crate) fn step_one(
    env: StepEnv<'_>,
    a: &mut Actor,
    inst: &Inst,
    slot: u64,
    spawns: &mut Vec<SpawnReq>,
    wakes: &mut Vec<(WaitCond, u64)>,
) -> StepOutcome {
    use StepOutcome as O;
    let StepEnv {
        hw,
        mem,
        traces,
        is_core,
        tile,
        engine,
        prog,
    } = env;

    let count_instr = |hw: &mut Hw| {
        if is_core {
            hw.stats.core_instrs += 1;
        } else {
            hw.stats.engine_instrs += 1;
        }
    };

    match inst {
        // ---- memory instructions: pre-walk, then step ----
        Inst::Ld { ra, off, .. } | Inst::St { ra, off, .. } => {
            let addr = a.ctx.reg(*ra).wrapping_add(*off as i64 as u64);
            let is_load = matches!(inst, Inst::Ld { .. });
            let kind = if is_load {
                AccessKind::Read
            } else {
                AccessKind::Write
            };
            let mut slot = slot;
            if is_core {
                slot = mshr_limit(a, hw.cfg.core.mshrs, slot);
            }
            let walk = match engine {
                None => hw.access_core(mem, tile, kind, addr, slot, true),
                Some(eid) => hw.access_engine(mem, eid, kind, addr, slot, true),
            };
            let at = match walk {
                Walk::Done { at } => at,
                Walk::Blocked(cond) => {
                    if let WaitCond::StreamData(sid) = cond {
                        // A consumer miss (re)triggers a miss-triggered
                        // producer.
                        if matches!(hw.ndc.stream(sid).mode, StreamMode::MissTriggered { .. }) {
                            wakes.push((WaitCond::StreamSpace(sid), slot));
                        }
                    }
                    return O::Park(cond);
                }
            };
            if is_load {
                hw.stats.load_to_use.record(at.saturating_sub(slot));
            }
            let info =
                exec::step(prog, &mut a.ctx, mem, &mut NoBlockHost).expect("mem step failed");
            debug_assert!(info.retired());
            count_instr(hw);
            if let Some(rd) = inst.def() {
                a.reg_ready[rd.index()] = at;
            }
            a.pending_mem.push(at);
            if a.pending_mem.len() > 128 {
                // Engines have no MSHR pruning; bound the drain set.
                let c = a.clock;
                a.pending_mem.retain(|&t| t > c);
            }
            a.clock = a.clock.max(slot);
            O::Continue
        }
        Inst::AtomicRmw { ordering, addr, .. } => {
            let target = a.ctx.reg(*addr);
            let fenced = *ordering == MemOrder::Fenced;
            let mut slot = slot;
            if fenced {
                // Drain all outstanding accesses first.
                for &p in &a.pending_mem {
                    slot = slot.max(p);
                }
            } else if is_core {
                slot = mshr_limit(a, hw.cfg.core.mshrs, slot);
            }
            let walk = match engine {
                None => hw.access_core(mem, tile, AccessKind::Rmw, target, slot, true),
                Some(eid) => hw.access_engine(mem, eid, AccessKind::Rmw, target, slot, true),
            };
            let at = match walk {
                Walk::Done { at } => at,
                Walk::Blocked(cond) => {
                    if let WaitCond::StreamData(sid) = cond {
                        if matches!(hw.ndc.stream(sid).mode, StreamMode::MissTriggered { .. }) {
                            wakes.push((WaitCond::StreamSpace(sid), slot));
                        }
                    }
                    return O::Park(cond);
                }
            };
            if fenced {
                hw.stats.fences += 1;
            }
            let info =
                exec::step(prog, &mut a.ctx, mem, &mut NoBlockHost).expect("rmw step failed");
            debug_assert!(info.retired());
            count_instr(hw);
            if is_core {
                hw.stats.core_rmws += 1;
            }
            if let Some(rd) = inst.def() {
                a.reg_ready[rd.index()] = at;
            }
            if fenced {
                // The RMW completes before anything younger issues.
                a.clock = at;
                a.pending_mem.clear();
            } else {
                a.pending_mem.push(at);
                a.clock = a.clock.max(slot);
            }
            O::Continue
        }
        Inst::Fence => {
            let mut t = slot;
            for &p in &a.pending_mem {
                t = t.max(p);
            }
            a.pending_mem.clear();
            hw.stats.fences += 1;
            let _ = exec::step(prog, &mut a.ctx, mem, &mut NoBlockHost);
            count_instr(hw);
            a.clock = t;
            O::Continue
        }

        // ---- control flow ----
        Inst::Br { .. } => {
            let pc_sig = ((a.ctx.pc.func.0 as u64) << 20) | a.ctx.pc.idx as u64;
            let info =
                exec::step(prog, &mut a.ctx, mem, &mut NoBlockHost).expect("branch step failed");
            count_instr(hw);
            let taken = matches!(info.control, Control::Branch { taken: true });
            if let Some(pred) = a.predictor.as_mut() {
                hw.stats.branches += 1;
                let correct = pred.update(pc_sig, taken);
                if correct {
                    a.clock = a.clock.max(slot);
                } else {
                    hw.stats.mispredicts += 1;
                    a.clock = slot + hw.cfg.core.mispredict_penalty;
                }
            } else {
                a.clock = a.clock.max(slot);
            }
            O::Continue
        }
        Inst::Jmp { .. } | Inst::Call { .. } | Inst::Ret | Inst::Halt => {
            let info =
                exec::step(prog, &mut a.ctx, mem, &mut NoBlockHost).expect("ctrl step failed");
            count_instr(hw);
            a.clock = a.clock.max(slot);
            if info.control == Control::Halt {
                // Commit semantics: outstanding stores drain before the
                // context retires.
                for &p in &a.pending_mem {
                    a.clock = a.clock.max(p);
                }
                a.pending_mem.clear();
                return O::Finished;
            }
            O::Continue
        }

        // ---- plain ALU ----
        Inst::Imm { .. } | Inst::Mov { .. } | Inst::Alu { .. } | Inst::AluI { .. } | Inst::Nop => {
            let class = inst.class();
            let _ = exec::step(prog, &mut a.ctx, mem, &mut NoBlockHost);
            count_instr(hw);
            let lat = if is_core {
                match class {
                    InstClass::Mul => hw.cfg.core.mul_latency,
                    InstClass::Div => hw.cfg.core.div_latency,
                    _ => 1,
                }
            } else {
                let e = &hw.engines[engine.expect("engine").index()];
                e.latency().max(match class {
                    InstClass::Mul => 3,
                    InstClass::Div => 12,
                    _ => e.latency(),
                })
            };
            if let Some(rd) = inst.def() {
                a.reg_ready[rd.index()] = slot + lat;
            }
            a.clock = a.clock.max(slot);
            O::Continue
        }

        Inst::Trace { rs } => {
            traces.push(a.ctx.reg(*rs));
            let _ = exec::step(prog, &mut a.ctx, mem, &mut NoBlockHost);
            count_instr(hw);
            a.clock = a.clock.max(slot);
            O::Continue
        }

        // ---- NDC instructions: run through the timed host ----
        Inst::Invoke { .. }
        | Inst::FutureWait { .. }
        | Inst::FutureSend { .. }
        | Inst::Push { .. }
        | Inst::Pop { .. }
        | Inst::Flush { .. } => {
            let mut host = TimedHost {
                hw,
                is_core,
                tile,
                engine,
                now: slot,
                invoke_acks: &mut a.invoke_acks,
                invoke_count: &mut a.invoke_count,
                invoke_retries: &mut a.invoke_retries,
                pending_span: &mut a.pending_span,
                spawns,
                wakes,
                block: None,
                sleep_until: None,
                op_done: slot + 1,
                wait_fill: slot,
            };
            let info = exec::step(prog, &mut a.ctx, mem, &mut host).expect("ndc step failed");
            let block = host.block;
            let sleep = host.sleep_until;
            let op_done = host.op_done;
            let wait_fill = host.wait_fill;
            if !info.retired() {
                if let Some(at) = sleep {
                    return O::SleepUntil(at.max(a.clock + 1));
                }
                return O::Park(block.expect("blocked NDC op must set a condition"));
            }
            count_instr(hw);
            if let Some(rd) = inst.def() {
                // FutureWait: value usable once the store-update arrives.
                a.reg_ready[rd.index()] = wait_fill.max(slot) + 1;
            }
            a.clock = a.clock.max(op_done.max(slot + 1) - 1);
            O::Continue
        }
    }
}

/// Applies the core MSHR limit: delays `slot` until an outstanding-miss
/// slot frees, pruning completed entries.
pub(crate) fn mshr_limit(a: &mut Actor, mshrs: u32, slot: u64) -> u64 {
    a.pending_mem.retain(|&t| t > slot);
    let mut slot = slot;
    while a.pending_mem.len() >= mshrs as usize {
        let min = *a.pending_mem.iter().min().expect("nonempty");
        slot = slot.max(min);
        a.pending_mem.retain(|&t| t > slot);
    }
    slot
}
