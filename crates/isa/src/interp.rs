//! Run-to-completion functional interpreters.
//!
//! [`Interpreter`] executes NDC-free LevIR code (panicking on NDC
//! instructions); [`SyncHost`] additionally services NDC instructions
//! *synchronously* — invokes run inline, futures fill immediately, streams
//! are unbounded queues — which makes it a golden model for testing workload
//! programs independently of the timing simulator.

use std::collections::{HashMap, VecDeque};

use crate::exec::{step, ExecCtx, ExecError, NdcHost, NdcRequest, NoNdc, Poll};
use crate::inst::Addr;
use crate::mem::Memory;
use crate::program::{ActionId, FuncId, Program};

/// Default per-run instruction budget guarding against runaway loops in
/// tests.
pub const DEFAULT_FUEL: u64 = 50_000_000;

/// A straightforward interpreter for NDC-free programs.
///
/// See the [crate-level example](crate) for usage.
#[derive(Debug)]
pub struct Interpreter<'p> {
    prog: &'p Program,
    fuel: u64,
}

impl<'p> Interpreter<'p> {
    /// Creates an interpreter for `prog` with the default fuel budget.
    pub fn new(prog: &'p Program) -> Self {
        Interpreter {
            prog,
            fuel: DEFAULT_FUEL,
        }
    }

    /// Overrides the instruction budget.
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// Runs `func(args…)` to completion and returns `r0`.
    ///
    /// # Errors
    /// Propagates [`ExecError`]s from the semantics.
    ///
    /// # Panics
    /// Panics if the program executes an NDC instruction or exceeds the
    /// fuel budget.
    pub fn run(
        &mut self,
        func: FuncId,
        args: &[u64],
        mem: &mut impl Memory,
    ) -> Result<u64, ExecError> {
        let mut host = NoNdc;
        self.run_with_host(func, args, mem, &mut host)
    }

    /// Runs `func(args…)` to completion under a caller-supplied NDC host.
    ///
    /// # Errors
    /// Propagates [`ExecError`]s from the semantics.
    ///
    /// # Panics
    /// Panics if execution blocks forever or exceeds the fuel budget.
    pub fn run_with_host(
        &mut self,
        func: FuncId,
        args: &[u64],
        mem: &mut impl Memory,
        host: &mut dyn NdcHost,
    ) -> Result<u64, ExecError> {
        let mut ctx = ExecCtx::new(func, args);
        let mut blocked_streak = 0u32;
        for _ in 0..self.fuel {
            if ctx.halted {
                return Ok(ctx.ret_val());
            }
            let info = step(self.prog, &mut ctx, mem, host)?;
            if info.retired() {
                blocked_streak = 0;
            } else {
                blocked_streak += 1;
                assert!(
                    blocked_streak < 1024,
                    "interpreter deadlocked: instruction at {:?} blocked {blocked_streak} times",
                    ctx.pc
                );
            }
        }
        panic!("interpreter ran out of fuel ({} instructions)", self.fuel);
    }
}

/// In-memory future layout used by [`SyncHost`] (and by the Leviathan
/// runtime): a 16-byte record of `{ filled: u64, value: u64 }`.
pub mod future_layout {
    use crate::inst::Addr;
    use crate::mem::Memory;

    /// Byte size of a future record.
    pub const SIZE: u64 = 16;

    /// Returns true if the future at `fut` has been filled.
    pub fn is_filled(mem: &dyn Memory, fut: Addr) -> bool {
        mem.read_u64(fut) != 0
    }

    /// Reads the value of a filled future.
    pub fn value(mem: &dyn Memory, fut: Addr) -> u64 {
        mem.read_u64(fut + 8)
    }

    /// Fills the future at `fut` with `val`.
    pub fn fill(mem: &mut dyn Memory, fut: Addr, val: u64) {
        mem.write_u64(fut + 8, val);
        mem.write_u64(fut, 1);
    }

    /// Resets the future at `fut` to unfilled.
    pub fn reset(mem: &mut dyn Memory, fut: Addr) {
        mem.write_u64(fut, 0);
        mem.write_u64(fut + 8, 0);
    }
}

/// A synchronous NDC host: a golden functional model of the Leviathan
/// runtime with all timing removed.
///
/// * `invoke` runs the action **inline** (recursively interpreting it);
/// * futures live in memory using [`future_layout`];
/// * streams are unbounded FIFOs keyed by handle — `push` appends, and the
///   consumer is expected to read entries via [`SyncHost::stream_read`]
///   (standing in for the phantom loads of the real system) before `pop`.
#[derive(Debug)]
pub struct SyncHost {
    prog: Program,
    actions: HashMap<ActionId, FuncId>,
    streams: HashMap<u64, VecDeque<u64>>,
    trace: Vec<u64>,
    depth: u32,
}

impl SyncHost {
    /// Creates a host executing actions from `prog` with the given action
    /// table.
    pub fn new(prog: Program, actions: HashMap<ActionId, FuncId>) -> Self {
        SyncHost {
            prog,
            actions,
            streams: HashMap::new(),
            trace: Vec::new(),
            depth: 0,
        }
    }

    /// Registers (or replaces) an action binding.
    pub fn register_action(&mut self, action: ActionId, func: FuncId) {
        self.actions.insert(action, func);
    }

    /// Values traced so far via `Trace`.
    pub fn traced(&self) -> &[u64] {
        &self.trace
    }

    /// Reads the oldest unconsumed entry of a stream without popping it.
    /// Stands in for the phantom load the real consumer issues.
    pub fn stream_read(&self, stream: u64) -> Option<u64> {
        self.streams.get(&stream).and_then(|q| q.front().copied())
    }

    /// Number of unconsumed entries in a stream.
    pub fn stream_len(&self, stream: u64) -> usize {
        self.streams.get(&stream).map_or(0, |q| q.len())
    }
}

impl NdcHost for SyncHost {
    fn invoke(&mut self, mem: &mut dyn Memory, req: NdcRequest) -> Poll<()> {
        assert!(self.depth < 64, "synchronous invoke recursion too deep");
        let func = *self
            .actions
            .get(&req.action)
            .unwrap_or_else(|| panic!("invoke of unregistered action {:?}", req.action));
        // Action ABI: r0 = actor pointer, r1.. = arguments.
        let mut args = Vec::with_capacity(1 + req.args.len());
        args.push(req.actor);
        args.extend_from_slice(&req.args);
        let mut ctx = ExecCtx::new(func, &args);
        self.depth += 1;
        let prog = self.prog.clone();
        let mut fuel = DEFAULT_FUEL;
        while !ctx.halted {
            assert!(fuel > 0, "action ran out of fuel");
            fuel -= 1;
            step(&prog, &mut ctx, mem, self).expect("action execution failed");
        }
        self.depth -= 1;
        if let Some(fut) = req.future {
            future_layout::fill(mem, fut, ctx.ret_val());
        }
        Poll::Ready(())
    }

    fn future_wait(&mut self, mem: &mut dyn Memory, fut: Addr) -> Poll<u64> {
        if future_layout::is_filled(mem, fut) {
            Poll::Ready(future_layout::value(mem, fut))
        } else {
            // Synchronous host: a wait on an unfilled future can never make
            // progress, so surface it as a deadlock via Pending retries.
            Poll::Pending
        }
    }

    fn future_send(&mut self, mem: &mut dyn Memory, fut: Addr, val: u64) {
        future_layout::fill(mem, fut, val);
    }

    fn push(&mut self, _mem: &mut dyn Memory, stream: u64, val: u64) -> Poll<()> {
        self.streams.entry(stream).or_default().push_back(val);
        Poll::Ready(())
    }

    fn pop(&mut self, _mem: &mut dyn Memory, stream: u64) {
        let q = self
            .streams
            .get_mut(&stream)
            .unwrap_or_else(|| panic!("pop on unknown stream {stream}"));
        assert!(q.pop_front().is_some(), "pop on empty stream {stream}");
    }

    fn flush(&mut self, _mem: &mut dyn Memory, _addr: Addr, _len: u64) {
        // Caches do not exist functionally; flush is a no-op here.
    }

    fn trace(&mut self, val: u64) {
        self.trace.push(val);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::inst::{Location, Reg};
    use crate::mem::PagedMem;

    /// Builds a program where `main` invokes an `add_to` action on an actor
    /// (a u64 counter in memory) with a future, then waits on it.
    fn invoke_program() -> (Program, FuncId, HashMap<ActionId, FuncId>) {
        let mut pb = ProgramBuilder::new();
        let action = {
            let mut f = pb.function("add_to");
            // r0 = actor ptr, r1 = amount; returns new value.
            let (actor, amt, v) = (Reg(0), Reg(1), Reg(2));
            f.ld8(v, actor, 0);
            f.add(v, v, amt);
            f.st8(actor, 0, v);
            f.mov(Reg(0), v).ret();
            f.finish()
        };
        let mut m = pb.function("main");
        // r0 = actor ptr, r1 = future ptr.
        let (actor, fut, amt) = (Reg(0), Reg(1), Reg(2));
        m.imm(amt, 5);
        m.invoke_future(actor, ActionId(0), &[amt], fut, Location::Dynamic);
        m.future_wait(Reg(0), fut);
        m.ret();
        let main = m.finish();
        let prog = pb.finish().unwrap();
        let mut actions = HashMap::new();
        actions.insert(ActionId(0), action);
        (prog, main, actions)
    }

    #[test]
    fn sync_invoke_with_future() {
        let (prog, main, actions) = invoke_program();
        let mut host = SyncHost::new(prog.clone(), actions);
        let mut mem = PagedMem::new();
        mem.write_u64(0x100, 37); // actor data
        let mut interp = Interpreter::new(&prog);
        let ret = interp
            .run_with_host(main, &[0x100, 0x200], &mut mem, &mut host)
            .unwrap();
        assert_eq!(ret, 42, "future returns the action's result");
        assert_eq!(mem.read_u64(0x100), 42, "actor data updated in place");
        assert!(future_layout::is_filled(&mem, 0x200));
    }

    #[test]
    fn streams_fifo_order() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("producer");
        // r0 = stream handle; pushes 3 values.
        let (s, v) = (Reg(0), Reg(1));
        f.imm(v, 10).push(s, v);
        f.imm(v, 20).push(s, v);
        f.imm(v, 30).push(s, v);
        f.ret();
        let prod = f.finish();
        let prog = pb.finish().unwrap();
        let mut host = SyncHost::new(prog.clone(), HashMap::new());
        let mut mem = PagedMem::new();
        let mut interp = Interpreter::new(&prog);
        interp
            .run_with_host(prod, &[7], &mut mem, &mut host)
            .unwrap();
        assert_eq!(host.stream_len(7), 3);
        assert_eq!(host.stream_read(7), Some(10));
        host.pop(&mut mem, 7);
        assert_eq!(host.stream_read(7), Some(20));
        host.pop(&mut mem, 7);
        host.pop(&mut mem, 7);
        assert_eq!(host.stream_len(7), 0);
    }

    #[test]
    fn trace_collects_values() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("t");
        f.imm(Reg(1), 99).trace(Reg(1)).ret();
        let id = f.finish();
        let prog = pb.finish().unwrap();
        let mut host = SyncHost::new(prog.clone(), HashMap::new());
        let mut mem = PagedMem::new();
        Interpreter::new(&prog)
            .run_with_host(id, &[], &mut mem, &mut host)
            .unwrap();
        assert_eq!(host.traced(), &[99]);
    }

    #[test]
    #[should_panic(expected = "deadlocked")]
    fn wait_on_never_filled_future_deadlocks() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("w");
        f.future_wait(Reg(0), Reg(0)).ret();
        let id = f.finish();
        let prog = pb.finish().unwrap();
        let mut host = SyncHost::new(prog.clone(), HashMap::new());
        let mut mem = PagedMem::new();
        let _ = Interpreter::new(&prog).run_with_host(id, &[0x500], &mut mem, &mut host);
    }

    #[test]
    fn future_layout_round_trip() {
        let mut mem = PagedMem::new();
        assert!(!future_layout::is_filled(&mem, 0x80));
        future_layout::fill(&mut mem, 0x80, 1234);
        assert!(future_layout::is_filled(&mem, 0x80));
        assert_eq!(future_layout::value(&mem, 0x80), 1234);
        future_layout::reset(&mut mem, 0x80);
        assert!(!future_layout::is_filled(&mem, 0x80));
    }
}
