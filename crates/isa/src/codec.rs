//! Dependency-free binary serialization for LevIR values.
//!
//! The checkpoint/restore subsystem in `levi-sim` needs to persist whole
//! programs, execution contexts, and the functional memory image without
//! pulling in a serialization crate. This module provides the byte-level
//! primitives ([`Writer`], [`Reader`]) and codecs for the types whose
//! constructors are crate-private ([`Program`], [`Function`]) or whose
//! representation is private ([`PagedMem`]).
//!
//! All integers are little-endian. Containers are length-prefixed
//! (`u32` for counts, `u64` for byte lengths). Enums are encoded as a
//! one-byte tag in declaration order. The format carries no per-value
//! type information — framing and versioning are the responsibility of
//! the embedding container (`levi-sim`'s snapshot header).

use crate::exec::{ExecCtx, Pc};
use crate::inst::{AluOp, BrCond, Inst, Label, Location, MemOrder, MemWidth, Reg, RmwOp, NUM_REGS};
use crate::mem::{PagedMem, PAGE_SIZE};
use crate::program::{ActionId, FuncId, Function, Program};

/// A decode failure. Encoding is infallible.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the value was complete.
    Truncated,
    /// A tag or length field held a value the decoder does not understand.
    Invalid(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "input truncated"),
            CodecError::Invalid(what) => write!(f, "invalid encoding: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Byte-buffer writer. A thin wrapper over `Vec<u8>` so call sites read
/// symmetrically with [`Reader`].
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends a little-endian u16.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian i32 (two's complement).
    pub fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian i64 (two's complement).
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an f64 as its raw IEEE-754 bits (bit-exact round trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends raw bytes with no length prefix.
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a u64-length-prefixed byte string.
    pub fn bytes(&mut self, bytes: &[u8]) {
        self.u64(bytes.len() as u64);
        self.raw(bytes);
    }

    /// Appends a UTF-8 string (length-prefixed).
    pub fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }
}

/// Byte-buffer reader over a borrowed slice.
#[derive(Clone, Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool; rejects bytes other than 0/1.
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Invalid("bool")),
        }
    }

    /// Reads a little-endian u16.
    pub fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian i32.
    pub fn i32(&mut self) -> Result<i32, CodecError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian i64.
    pub fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an f64 from its raw bits.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads `n` raw bytes.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        self.take(n)
    }

    /// Reads a u64-length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let n = self.u64()?;
        if n > self.remaining() as u64 {
            return Err(CodecError::Truncated);
        }
        self.take(n as usize)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, CodecError> {
        std::str::from_utf8(self.bytes()?).map_err(|_| CodecError::Invalid("utf-8"))
    }

    /// Reads a u32 element count, bounded by the bytes actually remaining
    /// (each element needs at least `min_elem_bytes`), so corrupted
    /// lengths fail cleanly instead of attempting huge allocations.
    pub fn count(&mut self, min_elem_bytes: usize) -> Result<usize, CodecError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(CodecError::Truncated);
        }
        Ok(n)
    }
}

// ---------------------------------------------------------------------------
// Instruction codec
// ---------------------------------------------------------------------------

fn write_reg(w: &mut Writer, r: Reg) {
    w.u8(r.0);
}

fn read_reg(r: &mut Reader) -> Result<Reg, CodecError> {
    let v = r.u8()?;
    if (v as usize) < NUM_REGS {
        Ok(Reg(v))
    } else {
        Err(CodecError::Invalid("register index"))
    }
}

fn alu_op_tag(op: AluOp) -> u8 {
    match op {
        AluOp::Add => 0,
        AluOp::Sub => 1,
        AluOp::Mul => 2,
        AluOp::DivU => 3,
        AluOp::RemU => 4,
        AluOp::And => 5,
        AluOp::Or => 6,
        AluOp::Xor => 7,
        AluOp::Shl => 8,
        AluOp::Shr => 9,
        AluOp::Sar => 10,
        AluOp::SltS => 11,
        AluOp::SltU => 12,
        AluOp::Seq => 13,
        AluOp::Sne => 14,
        AluOp::MinU => 15,
        AluOp::MaxU => 16,
    }
}

fn alu_op_from(tag: u8) -> Result<AluOp, CodecError> {
    Ok(match tag {
        0 => AluOp::Add,
        1 => AluOp::Sub,
        2 => AluOp::Mul,
        3 => AluOp::DivU,
        4 => AluOp::RemU,
        5 => AluOp::And,
        6 => AluOp::Or,
        7 => AluOp::Xor,
        8 => AluOp::Shl,
        9 => AluOp::Shr,
        10 => AluOp::Sar,
        11 => AluOp::SltS,
        12 => AluOp::SltU,
        13 => AluOp::Seq,
        14 => AluOp::Sne,
        15 => AluOp::MinU,
        16 => AluOp::MaxU,
        _ => return Err(CodecError::Invalid("alu op")),
    })
}

fn br_cond_tag(c: BrCond) -> u8 {
    match c {
        BrCond::Eq => 0,
        BrCond::Ne => 1,
        BrCond::LtS => 2,
        BrCond::LtU => 3,
        BrCond::GeS => 4,
        BrCond::GeU => 5,
    }
}

fn br_cond_from(tag: u8) -> Result<BrCond, CodecError> {
    Ok(match tag {
        0 => BrCond::Eq,
        1 => BrCond::Ne,
        2 => BrCond::LtS,
        3 => BrCond::LtU,
        4 => BrCond::GeS,
        5 => BrCond::GeU,
        _ => return Err(CodecError::Invalid("branch condition")),
    })
}

fn width_tag(w: MemWidth) -> u8 {
    match w {
        MemWidth::B1 => 0,
        MemWidth::B2 => 1,
        MemWidth::B4 => 2,
        MemWidth::B8 => 3,
    }
}

fn width_from(tag: u8) -> Result<MemWidth, CodecError> {
    Ok(match tag {
        0 => MemWidth::B1,
        1 => MemWidth::B2,
        2 => MemWidth::B4,
        3 => MemWidth::B8,
        _ => return Err(CodecError::Invalid("memory width")),
    })
}

fn rmw_op_tag(op: RmwOp) -> u8 {
    match op {
        RmwOp::Add => 0,
        RmwOp::And => 1,
        RmwOp::Or => 2,
        RmwOp::Xor => 3,
        RmwOp::MinU => 4,
        RmwOp::MaxU => 5,
        RmwOp::Xchg => 6,
    }
}

fn rmw_op_from(tag: u8) -> Result<RmwOp, CodecError> {
    Ok(match tag {
        0 => RmwOp::Add,
        1 => RmwOp::And,
        2 => RmwOp::Or,
        3 => RmwOp::Xor,
        4 => RmwOp::MinU,
        5 => RmwOp::MaxU,
        6 => RmwOp::Xchg,
        _ => return Err(CodecError::Invalid("rmw op")),
    })
}

fn order_tag(o: MemOrder) -> u8 {
    match o {
        MemOrder::Fenced => 0,
        MemOrder::Relaxed => 1,
    }
}

fn order_from(tag: u8) -> Result<MemOrder, CodecError> {
    Ok(match tag {
        0 => MemOrder::Fenced,
        1 => MemOrder::Relaxed,
        _ => return Err(CodecError::Invalid("memory order")),
    })
}

fn loc_tag(l: Location) -> u8 {
    match l {
        Location::Local => 0,
        Location::Remote => 1,
        Location::Dynamic => 2,
    }
}

fn loc_from(tag: u8) -> Result<Location, CodecError> {
    Ok(match tag {
        0 => Location::Local,
        1 => Location::Remote,
        2 => Location::Dynamic,
        _ => return Err(CodecError::Invalid("location")),
    })
}

/// Encodes one instruction.
pub fn write_inst(w: &mut Writer, inst: &Inst) {
    match inst {
        Inst::Imm { rd, val } => {
            w.u8(0);
            write_reg(w, *rd);
            w.u64(*val);
        }
        Inst::Mov { rd, rs } => {
            w.u8(1);
            write_reg(w, *rd);
            write_reg(w, *rs);
        }
        Inst::Alu { op, rd, ra, rb } => {
            w.u8(2);
            w.u8(alu_op_tag(*op));
            write_reg(w, *rd);
            write_reg(w, *ra);
            write_reg(w, *rb);
        }
        Inst::AluI { op, rd, ra, imm } => {
            w.u8(3);
            w.u8(alu_op_tag(*op));
            write_reg(w, *rd);
            write_reg(w, *ra);
            w.u64(*imm);
        }
        Inst::Ld {
            rd,
            ra,
            off,
            width,
            sext,
        } => {
            w.u8(4);
            write_reg(w, *rd);
            write_reg(w, *ra);
            w.i32(*off);
            w.u8(width_tag(*width));
            w.bool(*sext);
        }
        Inst::St { rs, ra, off, width } => {
            w.u8(5);
            write_reg(w, *rs);
            write_reg(w, *ra);
            w.i32(*off);
            w.u8(width_tag(*width));
        }
        Inst::Br {
            cond,
            ra,
            rb,
            target,
        } => {
            w.u8(6);
            w.u8(br_cond_tag(*cond));
            write_reg(w, *ra);
            write_reg(w, *rb);
            w.u32(target.0);
        }
        Inst::Jmp { target } => {
            w.u8(7);
            w.u32(target.0);
        }
        Inst::Call { func } => {
            w.u8(8);
            w.u32(func.0);
        }
        Inst::Ret => w.u8(9),
        Inst::Halt => w.u8(10),
        Inst::Nop => w.u8(11),
        Inst::AtomicRmw {
            op,
            rd,
            addr,
            rv,
            width,
            ordering,
        } => {
            w.u8(12);
            w.u8(rmw_op_tag(*op));
            write_reg(w, *rd);
            write_reg(w, *addr);
            write_reg(w, *rv);
            w.u8(width_tag(*width));
            w.u8(order_tag(*ordering));
        }
        Inst::Fence => w.u8(13),
        Inst::Invoke {
            actor,
            action,
            args,
            future,
            loc,
            exclusive,
        } => {
            w.u8(14);
            write_reg(w, *actor);
            w.u32(action.0);
            w.u8(args.len() as u8);
            for a in args {
                write_reg(w, *a);
            }
            match future {
                Some(r) => {
                    w.bool(true);
                    write_reg(w, *r);
                }
                None => w.bool(false),
            }
            w.u8(loc_tag(*loc));
            w.bool(*exclusive);
        }
        Inst::FutureWait { rd, rf } => {
            w.u8(15);
            write_reg(w, *rd);
            write_reg(w, *rf);
        }
        Inst::FutureSend { rf, rv } => {
            w.u8(16);
            write_reg(w, *rf);
            write_reg(w, *rv);
        }
        Inst::Push { stream, rs } => {
            w.u8(17);
            write_reg(w, *stream);
            write_reg(w, *rs);
        }
        Inst::Pop { stream } => {
            w.u8(18);
            write_reg(w, *stream);
        }
        Inst::Flush { addr, len } => {
            w.u8(19);
            write_reg(w, *addr);
            write_reg(w, *len);
        }
        Inst::Trace { rs } => {
            w.u8(20);
            write_reg(w, *rs);
        }
    }
}

/// Decodes one instruction.
pub fn read_inst(r: &mut Reader) -> Result<Inst, CodecError> {
    Ok(match r.u8()? {
        0 => Inst::Imm {
            rd: read_reg(r)?,
            val: r.u64()?,
        },
        1 => Inst::Mov {
            rd: read_reg(r)?,
            rs: read_reg(r)?,
        },
        2 => Inst::Alu {
            op: alu_op_from(r.u8()?)?,
            rd: read_reg(r)?,
            ra: read_reg(r)?,
            rb: read_reg(r)?,
        },
        3 => Inst::AluI {
            op: alu_op_from(r.u8()?)?,
            rd: read_reg(r)?,
            ra: read_reg(r)?,
            imm: r.u64()?,
        },
        4 => Inst::Ld {
            rd: read_reg(r)?,
            ra: read_reg(r)?,
            off: r.i32()?,
            width: width_from(r.u8()?)?,
            sext: r.bool()?,
        },
        5 => Inst::St {
            rs: read_reg(r)?,
            ra: read_reg(r)?,
            off: r.i32()?,
            width: width_from(r.u8()?)?,
        },
        6 => Inst::Br {
            cond: br_cond_from(r.u8()?)?,
            ra: read_reg(r)?,
            rb: read_reg(r)?,
            target: Label(r.u32()?),
        },
        7 => Inst::Jmp {
            target: Label(r.u32()?),
        },
        8 => Inst::Call {
            func: FuncId(r.u32()?),
        },
        9 => Inst::Ret,
        10 => Inst::Halt,
        11 => Inst::Nop,
        12 => Inst::AtomicRmw {
            op: rmw_op_from(r.u8()?)?,
            rd: read_reg(r)?,
            addr: read_reg(r)?,
            rv: read_reg(r)?,
            width: width_from(r.u8()?)?,
            ordering: order_from(r.u8()?)?,
        },
        13 => Inst::Fence,
        14 => {
            let actor = read_reg(r)?;
            let action = ActionId(r.u32()?);
            let nargs = r.u8()? as usize;
            let mut args = Vec::with_capacity(nargs);
            for _ in 0..nargs {
                args.push(read_reg(r)?);
            }
            let future = if r.bool()? { Some(read_reg(r)?) } else { None };
            Inst::Invoke {
                actor,
                action,
                args,
                future,
                loc: loc_from(r.u8()?)?,
                exclusive: r.bool()?,
            }
        }
        15 => Inst::FutureWait {
            rd: read_reg(r)?,
            rf: read_reg(r)?,
        },
        16 => Inst::FutureSend {
            rf: read_reg(r)?,
            rv: read_reg(r)?,
        },
        17 => Inst::Push {
            stream: read_reg(r)?,
            rs: read_reg(r)?,
        },
        18 => Inst::Pop {
            stream: read_reg(r)?,
        },
        19 => Inst::Flush {
            addr: read_reg(r)?,
            len: read_reg(r)?,
        },
        20 => Inst::Trace { rs: read_reg(r)? },
        _ => return Err(CodecError::Invalid("instruction tag")),
    })
}

// ---------------------------------------------------------------------------
// Program codec
// ---------------------------------------------------------------------------

/// Encodes a whole program (function names and instruction streams).
pub fn write_program(w: &mut Writer, p: &Program) {
    w.u32(p.len() as u32);
    for (_, f) in p.iter() {
        w.str(f.name());
        w.u32(f.insts().len() as u32);
        for inst in f.insts() {
            write_inst(w, inst);
        }
    }
}

/// Decodes a program previously written by [`write_program`].
pub fn read_program(r: &mut Reader) -> Result<Program, CodecError> {
    let nfuncs = r.count(1)?;
    let mut funcs = Vec::with_capacity(nfuncs);
    for _ in 0..nfuncs {
        let name = r.str()?.to_owned();
        let ninsts = r.count(1)?;
        let mut insts = Vec::with_capacity(ninsts);
        for _ in 0..ninsts {
            insts.push(read_inst(r)?);
        }
        funcs.push(Function::new(name, insts));
    }
    Ok(Program::from_functions(funcs))
}

// ---------------------------------------------------------------------------
// Execution-context codec
// ---------------------------------------------------------------------------

fn write_pc(w: &mut Writer, pc: Pc) {
    w.u32(pc.func.0);
    w.u32(pc.idx);
}

fn read_pc(r: &mut Reader) -> Result<Pc, CodecError> {
    Ok(Pc {
        func: FuncId(r.u32()?),
        idx: r.u32()?,
    })
}

/// Encodes an execution context (registers, PC, call stack, flags).
pub fn write_exec_ctx(w: &mut Writer, ctx: &ExecCtx) {
    for reg in &ctx.regs {
        w.u64(*reg);
    }
    write_pc(w, ctx.pc);
    w.u32(ctx.callstack.len() as u32);
    for pc in &ctx.callstack {
        write_pc(w, *pc);
    }
    w.bool(ctx.halted);
    w.u64(ctx.retired);
}

/// Decodes an execution context written by [`write_exec_ctx`].
pub fn read_exec_ctx(r: &mut Reader) -> Result<ExecCtx, CodecError> {
    let mut regs = [0u64; NUM_REGS];
    for reg in &mut regs {
        *reg = r.u64()?;
    }
    let pc = read_pc(r)?;
    let depth = r.count(8)?;
    let mut callstack = Vec::with_capacity(depth);
    for _ in 0..depth {
        callstack.push(read_pc(r)?);
    }
    let halted = r.bool()?;
    let retired = r.u64()?;
    let mut ctx = ExecCtx::new(pc.func, &[]);
    ctx.regs = regs;
    ctx.pc = pc;
    ctx.callstack = callstack;
    ctx.halted = halted;
    ctx.retired = retired;
    Ok(ctx)
}

// ---------------------------------------------------------------------------
// Memory codec
// ---------------------------------------------------------------------------

/// Encodes the full sparse memory image, pages in ascending index order
/// (the order is deterministic regardless of `HashMap` iteration order).
pub fn write_mem(w: &mut Writer, mem: &PagedMem) {
    let pages = mem.pages_ref();
    let mut idx: Vec<u64> = pages.keys().copied().collect();
    idx.sort_unstable();
    w.u32(idx.len() as u32);
    for i in idx {
        w.u64(i);
        w.raw(&pages[&i][..]);
    }
}

/// Decodes a memory image written by [`write_mem`].
pub fn read_mem(r: &mut Reader) -> Result<PagedMem, CodecError> {
    let npages = r.count(8 + PAGE_SIZE)?;
    let mut pages: crate::fx::FxHashMap<u64, Box<[u8; PAGE_SIZE]>> =
        crate::fx::map_with_capacity(npages);
    for _ in 0..npages {
        let idx = r.u64()?;
        let data = r.raw(PAGE_SIZE)?;
        let mut page = Box::new([0u8; PAGE_SIZE]);
        page.copy_from_slice(data);
        if pages.insert(idx, page).is_some() {
            return Err(CodecError::Invalid("duplicate memory page"));
        }
    }
    Ok(PagedMem::from_pages(pages))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::mem::Memory;

    fn sample_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let (a, b) = (Reg(0), Reg(1));
        let done = f.label();
        f.imm(a, 7).imm(b, 35);
        f.bge_u(a, b, done);
        f.add(a, a, b);
        f.bind(done);
        f.ret();
        f.finish();
        pb.finish().unwrap()
    }

    #[test]
    fn program_round_trip() {
        let p = sample_program();
        let mut w = Writer::new();
        write_program(&mut w, &p);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let q = read_program(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(p.len(), q.len());
        for ((_, pf), (_, qf)) in p.iter().zip(q.iter()) {
            assert_eq!(pf.name(), qf.name());
            assert_eq!(pf.insts(), qf.insts());
        }
    }

    #[test]
    fn truncated_program_rejected() {
        let p = sample_program();
        let mut w = Writer::new();
        write_program(&mut w, &p);
        let bytes = w.into_bytes();
        for cut in [0, 3, bytes.len() / 2, bytes.len() - 1] {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(read_program(&mut r).is_err(), "cut at {cut} not rejected");
        }
    }

    #[test]
    fn mem_round_trip() {
        let mut m = PagedMem::new();
        m.write_u64(0x10, 0xdead_beef_cafe_f00d);
        m.write_u64(0x12_3450, 42);
        m.write_u8(0xffff_f000, 7);
        let mut w = Writer::new();
        write_mem(&mut w, &m);
        let bytes = w.into_bytes();
        let m2 = read_mem(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(m2.read_u64(0x10), 0xdead_beef_cafe_f00d);
        assert_eq!(m2.read_u64(0x12_3450), 42);
        assert_eq!(m2.read_u8(0xffff_f000), 7);
        assert_eq!(m2.resident_pages(), m.resident_pages());
    }

    #[test]
    fn bad_tags_rejected() {
        let mut r = Reader::new(&[0xff]);
        assert_eq!(
            read_inst(&mut r),
            Err(CodecError::Invalid("instruction tag"))
        );
        let mut r = Reader::new(&[2, 99, 0, 0, 0]);
        assert_eq!(read_inst(&mut r), Err(CodecError::Invalid("alu op")));
    }
}
