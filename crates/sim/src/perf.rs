//! Host-side self-profiling: scoped phase timers attributing simulator
//! wall-time to subsystems.
//!
//! The simulator's own speed is a first-class quantity (the ROADMAP
//! north-star is "as fast as the hardware allows"), so this module lets a
//! build measure *where* host time goes: construction, scheduling,
//! instruction execution, cache walks, NoC routing, DRAM service, invoke
//! scheduling, and flushes. Hooks are `prof_scope!` statements threaded
//! through the hot modules; each opens a scoped timer on a thread-local
//! stack and records *self time* — time in nested scopes is attributed to
//! the inner phase, not double-counted in the outer one.
//!
//! Everything here is feature-gated on `self-profile`:
//!
//! * **Feature off (the default):** `prof_scope!` expands to nothing, the
//!   thread-local state does not exist, and [`take`] returns an empty
//!   profile. Deterministic outputs are byte-identical to an
//!   uninstrumented build.
//! * **Feature on:** each scope costs two monotonic-clock reads plus a
//!   thread-local access. [`crate::Machine::run`] drains the accumulated
//!   profile into [`crate::Stats::host_phases`] when it returns, covering
//!   everything the calling thread measured since the previous drain
//!   (machine construction included).
//!
//! Wall-clock nanoseconds are *never* part of deterministic output: the
//! profile is not printed by `Stats`'s `Display` and feeds nothing in the
//! simulation. Consumers (the `levi-perf` harness) read
//! [`crate::Stats::host_phases`] explicitly.
//!
//! **Fast paths skip their scope.** Because a scope costs two clock reads
//! (~40–50 ns), the hottest early returns — core L1 hits, engine L1d
//! hits, same-tile NoC sends, DRAM FIFO-cache hits — resolve *before*
//! entering their subsystem's scope. Their (tiny) host time lands in the
//! enclosing phase (usually `Exec`), and `calls` counts scope entries,
//! i.e. slow-path events, not total subsystem invocations. This trades a
//! little attribution precision on cheap hits for not perturbing the very
//! paths the profile exists to optimize.

use std::fmt;

/// Number of distinct [`Phase`]s.
pub const NUM_PHASES: usize = 8;

/// A simulator subsystem that host wall-time is attributed to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Machine construction (`Machine::try_new`: cache/NoC/DRAM setup).
    Build,
    /// Run-queue dispatch: pop, watchdog, sampling, wake bookkeeping.
    Sched,
    /// Instruction execution (issue, scoreboard, functional step).
    Exec,
    /// Cache-hierarchy miss walks (L2/LLC probes, directory, fills).
    /// L1/L1d hits resolve before the scope opens and land in the caller.
    Cache,
    /// NoC routing and link reservation for cross-tile messages.
    /// Same-tile sends return before the scope opens.
    Noc,
    /// DRAM controller queueing and service. FIFO-cache hits return
    /// before the scope opens.
    Dram,
    /// Invoke scheduling (placement, NACK, backpressure).
    Invoke,
    /// Range flushes (Morph unregistration, cache drains).
    Flush,
}

impl Phase {
    /// Every phase, in declaration order (index order of the profile
    /// arrays).
    pub const ALL: [Phase; NUM_PHASES] = [
        Phase::Build,
        Phase::Sched,
        Phase::Exec,
        Phase::Cache,
        Phase::Noc,
        Phase::Dram,
        Phase::Invoke,
        Phase::Flush,
    ];

    /// Stable lowercase name (report keys).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Build => "build",
            Phase::Sched => "sched",
            Phase::Exec => "exec",
            Phase::Cache => "cache",
            Phase::Noc => "noc",
            Phase::Dram => "dram",
            Phase::Invoke => "invoke",
            Phase::Flush => "flush",
        }
    }

    /// Looks a phase up by its stable name.
    pub fn from_name(name: &str) -> Option<Phase> {
        Phase::ALL.iter().copied().find(|p| p.name() == name)
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Accumulated host wall-time per phase.
///
/// `ns[i]` is *self time*: nanoseconds spent in phase `Phase::ALL[i]`
/// excluding nested scopes. `calls[i]` counts scope entries. Always
/// compiled (the struct is part of [`crate::Stats`]); only populated when
/// the `self-profile` feature is on.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseProfile {
    /// Self-time nanoseconds per phase, indexed like [`Phase::ALL`].
    pub ns: [u64; NUM_PHASES],
    /// Scope entries per phase, indexed like [`Phase::ALL`].
    pub calls: [u64; NUM_PHASES],
}

impl PhaseProfile {
    /// Self-time nanoseconds attributed to `phase`.
    pub fn ns(&self, phase: Phase) -> u64 {
        self.ns[phase as usize]
    }

    /// Scope entries recorded for `phase`.
    pub fn calls(&self, phase: Phase) -> u64 {
        self.calls[phase as usize]
    }

    /// Total self-time across all phases (equals wall time covered by at
    /// least one scope).
    pub fn total_ns(&self) -> u64 {
        self.ns.iter().sum()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total_ns() == 0 && self.calls.iter().all(|&c| c == 0)
    }

    /// Adds `other`'s counters into `self`.
    pub fn merge(&mut self, other: &PhaseProfile) {
        for i in 0..NUM_PHASES {
            self.ns[i] += other.ns[i];
            self.calls[i] += other.calls[i];
        }
    }

    /// `(phase, self_ns, calls)` tuples sorted by descending self time
    /// (ties broken by declaration order), skipping phases never entered.
    pub fn ranked(&self) -> Vec<(Phase, u64, u64)> {
        let mut v: Vec<(Phase, u64, u64)> = Phase::ALL
            .iter()
            .map(|&p| (p, self.ns(p), self.calls(p)))
            .filter(|&(_, ns, calls)| ns > 0 || calls > 0)
            .collect();
        v.sort_by_key(|e| std::cmp::Reverse(e.1));
        v
    }
}

#[cfg(feature = "self-profile")]
mod active {
    use super::{PhaseProfile, NUM_PHASES};
    use std::cell::RefCell;
    use std::time::Instant;

    /// One open scope: its phase and the start of its current *segment*
    /// (segments restart when a nested scope opens or closes).
    struct Frame {
        phase: usize,
        seg_start: Instant,
    }

    #[derive(Default)]
    struct State {
        ns: [u64; NUM_PHASES],
        calls: [u64; NUM_PHASES],
        stack: Vec<Frame>,
    }

    thread_local! {
        static STATE: RefCell<State> = RefCell::default();
    }

    /// Closes its scope on drop, crediting the elapsed segment to the
    /// scope's phase and resuming the parent's segment.
    pub struct ScopeGuard {
        _not_send: std::marker::PhantomData<*const ()>,
    }

    /// Opens a scope for `phase`, pausing the enclosing scope's segment.
    pub fn enter(phase: super::Phase) -> ScopeGuard {
        STATE.with(|cell| {
            let now = Instant::now();
            let state = &mut *cell.borrow_mut();
            if let Some(top) = state.stack.last_mut() {
                state.ns[top.phase] += now.duration_since(top.seg_start).as_nanos() as u64;
                top.seg_start = now;
            }
            state.calls[phase as usize] += 1;
            state.stack.push(Frame {
                phase: phase as usize,
                seg_start: now,
            });
        });
        ScopeGuard {
            _not_send: std::marker::PhantomData,
        }
    }

    impl Drop for ScopeGuard {
        fn drop(&mut self) {
            STATE.with(|cell| {
                let now = Instant::now();
                let state = &mut *cell.borrow_mut();
                if let Some(frame) = state.stack.pop() {
                    state.ns[frame.phase] += now.duration_since(frame.seg_start).as_nanos() as u64;
                }
                if let Some(parent) = state.stack.last_mut() {
                    parent.seg_start = now;
                }
            });
        }
    }

    /// Drains this thread's accumulated profile, resetting the counters.
    /// Open scopes keep running; their in-flight segments land in the next
    /// drain.
    pub fn take() -> PhaseProfile {
        STATE.with(|cell| {
            let state = &mut *cell.borrow_mut();
            let profile = PhaseProfile {
                ns: state.ns,
                calls: state.calls,
            };
            state.ns = [0; NUM_PHASES];
            state.calls = [0; NUM_PHASES];
            profile
        })
    }
}

#[cfg(feature = "self-profile")]
pub use active::{enter, ScopeGuard};

/// Drains the calling thread's accumulated profile.
///
/// With the `self-profile` feature off this is a const empty profile; the
/// signature stays so callers need no feature gates.
#[cfg(feature = "self-profile")]
pub fn take() -> PhaseProfile {
    active::take()
}

/// Drains the calling thread's accumulated profile.
///
/// With the `self-profile` feature off this is a const empty profile; the
/// signature stays so callers need no feature gates.
#[cfg(not(feature = "self-profile"))]
pub fn take() -> PhaseProfile {
    PhaseProfile::default()
}

/// Opens a scoped phase timer for the rest of the enclosing block.
/// Expands to nothing (beyond evaluating its argument, a `Copy` enum)
/// without the `self-profile` feature.
#[cfg(feature = "self-profile")]
macro_rules! prof_scope {
    ($phase:expr) => {
        let _prof_guard = $crate::perf::enter($phase);
    };
}

/// Opens a scoped phase timer for the rest of the enclosing block.
/// Expands to nothing (beyond evaluating its argument, a `Copy` enum)
/// without the `self-profile` feature.
#[cfg(not(feature = "self-profile"))]
macro_rules! prof_scope {
    ($phase:expr) => {
        let _ = $phase;
    };
}

pub(crate) use prof_scope;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_names_round_trip() {
        for p in Phase::ALL {
            assert_eq!(Phase::from_name(p.name()), Some(p));
            assert_eq!(p.to_string(), p.name());
        }
        assert_eq!(Phase::from_name("nope"), None);
    }

    #[test]
    fn profile_merge_and_rank() {
        let mut a = PhaseProfile::default();
        assert!(a.is_empty());
        a.ns[Phase::Cache as usize] = 50;
        a.calls[Phase::Cache as usize] = 2;
        let mut b = PhaseProfile::default();
        b.ns[Phase::Cache as usize] = 25;
        b.calls[Phase::Cache as usize] = 1;
        b.ns[Phase::Dram as usize] = 100;
        b.calls[Phase::Dram as usize] = 4;
        a.merge(&b);
        assert_eq!(a.ns(Phase::Cache), 75);
        assert_eq!(a.calls(Phase::Cache), 3);
        assert_eq!(a.total_ns(), 175);
        let ranked = a.ranked();
        assert_eq!(ranked[0].0, Phase::Dram);
        assert_eq!(ranked[1], (Phase::Cache, 75, 3));
        assert_eq!(ranked.len(), 2, "untouched phases are skipped");
    }

    #[test]
    fn take_matches_feature_state() {
        // Drain anything earlier tests on this thread left behind.
        let _ = take();
        {
            prof_scope!(Phase::Flush);
            std::hint::black_box(0u64);
        }
        let profile = take();
        if cfg!(feature = "self-profile") {
            assert_eq!(profile.calls(Phase::Flush), 1);
            assert_eq!(profile.ranked().len(), 1);
        } else {
            assert!(profile.is_empty(), "no-op without the feature");
        }
        assert!(take().is_empty(), "take drains");
    }

    #[cfg(feature = "self-profile")]
    #[test]
    fn nested_scopes_attribute_self_time() {
        let _ = take();
        let spin = |ns: u64| {
            let start = std::time::Instant::now();
            while (start.elapsed().as_nanos() as u64) < ns {
                std::hint::black_box(0u64);
            }
        };
        {
            prof_scope!(Phase::Sched);
            spin(200_000);
            {
                prof_scope!(Phase::Cache);
                spin(200_000);
            }
            spin(200_000);
        }
        let p = take();
        assert_eq!(p.calls(Phase::Sched), 1);
        assert_eq!(p.calls(Phase::Cache), 1);
        // Self time: the outer scope must not absorb the inner scope's
        // 200µs; both phases saw real time.
        assert!(p.ns(Phase::Cache) >= 200_000, "{p:?}");
        assert!(p.ns(Phase::Sched) >= 400_000, "{p:?}");
        assert!(
            p.ns(Phase::Sched) < p.total_ns(),
            "inner time was not double-counted: {p:?}"
        );
    }
}
