//! A small, dependency-free deterministic PRNG.
//!
//! The implementation lives in `levi_sim::rng` (the simulator's fault
//! planner also needs seedable determinism); this module re-exports it so
//! existing `levi_workloads::rng::SmallRng` paths keep working.

pub use levi_sim::rng::*;
