//! The unified telemetry registry: one view over every metric surface.
//!
//! `Stats` accumulates counters, log2 histograms, time-series samples,
//! host-phase wall-time, fault counters, and invoke-lifecycle span
//! attributions — each grown in a different PR with its own ad-hoc
//! accessor. [`Telemetry`] presents them behind one registry with
//! self-describing exporters:
//!
//! * [`Telemetry::to_jsonl`] — a JSON-lines metrics dump (one metric per
//!   line, first line a header naming the schema version and scope).
//!   `levi-bench run --telemetry <path>` appends one block per run and
//!   `levi-bench check-report` validates the result.
//! * [`Telemetry::to_prometheus`] — Prometheus text exposition format
//!   (`levi_*` families), ready for a scrape endpoint (`levi-serve`).
//! * The Chrome/Perfetto trace export stays on
//!   [`Tracer::to_chrome_json`](crate::trace::Tracer::to_chrome_json),
//!   which flow-links span stage events; the registry deliberately does
//!   not duplicate the event buffer into the metrics dump.
//!
//! Everything here reads a finished [`Stats`] — building a `Telemetry`
//! has no effect on simulation and costs nothing unless an exporter is
//! called. Wall-clock host phases are included only when populated (the
//! `self-profile` feature), since their values are nondeterministic.

use std::fmt::Write as _;

use crate::hist::Histogram;
use crate::perf::Phase;
use crate::stats::{Stats, MAX_PHASES, TOP_SLOW_INVOKES};

/// Schema version stamped into every JSON-lines dump header.
pub const TELEMETRY_VERSION: u32 = 1;

/// A read-only registry over one run's telemetry surfaces.
pub struct Telemetry<'a> {
    stats: &'a Stats,
}

/// Escapes a string for embedding in a JSON string or Prometheus label.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl<'a> Telemetry<'a> {
    /// Wraps a finished run's statistics.
    pub fn new(stats: &'a Stats) -> Self {
        Telemetry { stats }
    }

    /// Every scalar counter in the registry, as `(name, value)` in a
    /// stable order. This is the single source both exporters render.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        let s = self.stats;
        let mut v = vec![
            ("cycles", s.cycles),
            ("core_instrs", s.core_instrs),
            ("engine_instrs", s.engine_instrs),
            ("l1_hits", s.l1.hits),
            ("l1_misses", s.l1.misses),
            ("l1_writebacks", s.l1.writebacks),
            ("l2_hits", s.l2.hits),
            ("l2_misses", s.l2.misses),
            ("l2_writebacks", s.l2.writebacks),
            ("llc_hits", s.llc.hits),
            ("llc_misses", s.llc.misses),
            ("llc_writebacks", s.llc.writebacks),
            ("engine_l1_hits", s.engine_l1.hits),
            ("engine_l1_misses", s.engine_l1.misses),
            ("engine_l1_writebacks", s.engine_l1.writebacks),
            ("dir_lookups", s.dir_lookups),
            ("invalidations", s.invalidations),
            ("ownership_transfers", s.ownership_transfers),
            ("noc_messages", s.noc_messages),
            ("noc_flit_hops", s.noc_flit_hops),
            ("dram_accesses", s.dram_accesses),
            ("mc_cache_hits", s.mc_cache_hits),
            ("branches", s.branches),
            ("mispredicts", s.mispredicts),
            ("fences", s.fences),
            ("core_rmws", s.core_rmws),
            ("invokes", s.invokes),
            ("invoke_nacks", s.invoke_nacks),
            ("invoke_migrations", s.invoke_migrations),
            ("ctor_actions", s.ctor_actions),
            ("dtor_actions", s.dtor_actions),
            ("stream_pushes", s.stream_pushes),
            ("stream_pops", s.stream_pops),
            ("stream_stall_cycles", s.stream_stall_cycles),
            ("prefetches", s.prefetches),
            ("faults_injected", s.faults_injected),
            ("fault_nack_retries", s.fault_nack_retries),
            ("fault_fallbacks", s.fault_fallbacks),
            ("fault_degraded_cycles", s.fault_degraded_cycles),
            ("tlb_hits", s.tlb_hits),
            ("tlb_misses", s.tlb_misses),
            ("tlb_walk_cycles", s.tlb_walk_cycles),
            ("tenant_quota_nacks", s.tenant_quota_nacks),
            ("trace_events", s.trace.len() as u64),
            ("trace_dropped", s.trace.dropped()),
            ("spans_recorded", s.spans.len() as u64),
            ("spans_dropped", s.spans.dropped()),
            ("timeline_samples", s.timeline.samples().len() as u64),
        ];
        const PHASE_NAMES: [&str; MAX_PHASES] =
            ["dram_phase0", "dram_phase1", "dram_phase2", "dram_phase3"];
        for (i, name) in PHASE_NAMES.iter().enumerate() {
            v.push((name, s.dram_by_phase[i]));
        }
        // Per-tenant series appear only when tenancy is configured, so
        // single-tenant dumps stay byte-identical to pre-tenancy builds.
        const TENANT_LLC: [&str; 8] = [
            "tenant0_llc_misses",
            "tenant1_llc_misses",
            "tenant2_llc_misses",
            "tenant3_llc_misses",
            "tenant4_llc_misses",
            "tenant5_llc_misses",
            "tenant6_llc_misses",
            "tenant7_llc_misses",
        ];
        const TENANT_INVOKES: [&str; 8] = [
            "tenant0_invokes",
            "tenant1_invokes",
            "tenant2_invokes",
            "tenant3_invokes",
            "tenant4_invokes",
            "tenant5_invokes",
            "tenant6_invokes",
            "tenant7_invokes",
        ];
        const TENANT_FINISH: [&str; 8] = [
            "tenant0_finish_cycles",
            "tenant1_finish_cycles",
            "tenant2_finish_cycles",
            "tenant3_finish_cycles",
            "tenant4_finish_cycles",
            "tenant5_finish_cycles",
            "tenant6_finish_cycles",
            "tenant7_finish_cycles",
        ];
        for (i, &m) in s.tenant_llc_misses.iter().enumerate().take(8) {
            v.push((TENANT_LLC[i], m));
        }
        for (i, &m) in s.tenant_invokes.iter().enumerate().take(8) {
            v.push((TENANT_INVOKES[i], m));
        }
        for (i, &m) in s.tenant_finish.iter().enumerate().take(8) {
            v.push((TENANT_FINISH[i], m));
        }
        v
    }

    /// Every latency histogram in the registry, as `(name, histogram)`.
    pub fn histograms(&self) -> [(&'static str, &'a Histogram); 6] {
        let s = self.stats;
        [
            ("invoke_rtt", &s.invoke_rtt),
            ("load_to_use", &s.load_to_use),
            ("dram_queue", &s.dram_queue),
            ("stream_stall", &s.stream_stall),
            ("fault_backoff", &s.fault_backoff),
            ("xlat_walk", &s.xlat_walk),
        ]
    }

    /// Renders the registry as one self-describing JSON-lines block:
    /// a `{"telemetry":{...}}` header, then one line per counter,
    /// populated histogram, time-series sample, host phase (when the
    /// `self-profile` feature filled them), span stage total, and
    /// top-k slowest invoke.
    pub fn to_jsonl(&self, scope: &str) -> String {
        let s = self.stats;
        let mut out = String::with_capacity(4096);
        let _ = writeln!(
            out,
            "{{\"telemetry\":{{\"version\":{TELEMETRY_VERSION},\"scope\":\"{}\"}}}}",
            escape(scope)
        );
        for (name, value) in self.counters() {
            let _ = writeln!(
                out,
                "{{\"metric\":\"{name}\",\"type\":\"counter\",\"value\":{value}}}"
            );
        }
        for (name, h) in self.histograms() {
            if h.is_empty() {
                continue;
            }
            let _ = writeln!(
                out,
                "{{\"metric\":\"{name}\",\"type\":\"histogram\",\"count\":{},\"sum\":{},\
                 \"min\":{},\"max\":{},\"mean\":{:.6},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                h.count(),
                h.sum(),
                h.min(),
                h.max(),
                h.mean(),
                h.percentile(0.50),
                h.percentile(0.90),
                h.percentile(0.99),
            );
        }
        // Host wall-time is nondeterministic; it only appears when the
        // self-profile feature populated it, tagged as gauges.
        if !s.host_phases.is_empty() {
            for p in Phase::ALL {
                let _ = writeln!(
                    out,
                    "{{\"metric\":\"host_ns_{}\",\"type\":\"gauge\",\"value\":{}}}",
                    p.name(),
                    s.host_phases.ns(p)
                );
            }
        }
        for sample in s.timeline.samples() {
            let _ = writeln!(
                out,
                "{{\"sample\":{{\"cycle\":{},\"ipc\":{:.6},\"core_instrs\":{},\
                 \"engine_instrs\":{},\"l1_miss_ratio\":{:.6},\"l2_miss_ratio\":{:.6},\
                 \"llc_miss_ratio\":{:.6},\"noc_flit_hops\":{},\"dram_accesses\":{},\
                 \"engine_ctxs\":{},\"stream_depth\":{}}}}}",
                sample.cycle,
                sample.ipc,
                sample.core_instrs,
                sample.engine_instrs,
                sample.l1_miss_ratio,
                sample.l2_miss_ratio,
                sample.llc_miss_ratio,
                sample.noc_flit_hops,
                sample.dram_accesses,
                sample.engine_ctxs,
                sample.stream_depth,
            );
        }
        if !s.spans.is_empty() {
            let cp = s.spans.critical_path(TOP_SLOW_INVOKES);
            let _ = writeln!(
                out,
                "{{\"span_summary\":{{\"recorded\":{},\"complete\":{},\"incomplete\":{},\
                 \"dropped\":{},\"rtt_total\":{}}}}}",
                s.spans.len(),
                cp.completed,
                cp.incomplete,
                s.spans.dropped(),
                cp.rtt_total,
            );
            let t = &cp.totals;
            for (stage, cycles) in [
                ("offload", t.offload),
                ("noc", t.noc),
                ("queue", t.queue),
                ("exec", t.exec),
                ("response", t.response),
            ] {
                let _ = writeln!(
                    out,
                    "{{\"span_stage\":{{\"stage\":\"{stage}\",\"cycles\":{cycles}}}}}"
                );
            }
            for (rank, slow) in cp.slowest.iter().enumerate() {
                let st = &slow.stages;
                let _ = writeln!(
                    out,
                    "{{\"slow_invoke\":{{\"rank\":{},\"span\":{},\"src_tile\":{},\"rtt\":{},\
                     \"offload\":{},\"noc\":{},\"queue\":{},\"exec\":{},\"response\":{}}}}}",
                    rank + 1,
                    slow.id.0,
                    slow.src_tile,
                    slow.rtt,
                    st.offload,
                    st.noc,
                    st.queue,
                    st.exec,
                    st.response,
                );
            }
        }
        out
    }

    /// Renders the registry in the Prometheus text exposition format
    /// (`levi_*` metric families). `scope` becomes a `scope="..."` label
    /// on every series when non-empty.
    pub fn to_prometheus(&self, scope: &str) -> String {
        let s = self.stats;
        let label = if scope.is_empty() {
            String::new()
        } else {
            format!("{{scope=\"{}\"}}", escape(scope))
        };
        let with = |extra: &str| {
            if scope.is_empty() {
                format!("{{{extra}}}")
            } else {
                format!("{{scope=\"{}\",{extra}}}", escape(scope))
            }
        };
        let mut out = String::with_capacity(4096);
        for (name, value) in self.counters() {
            let _ = writeln!(out, "# TYPE levi_{name} counter");
            let _ = writeln!(out, "levi_{name}{label} {value}");
        }
        for (name, h) in self.histograms() {
            if h.is_empty() {
                continue;
            }
            let _ = writeln!(out, "# TYPE levi_{name} summary");
            for (q, v) in [
                ("0.5", h.percentile(0.50)),
                ("0.9", h.percentile(0.90)),
                ("0.99", h.percentile(0.99)),
            ] {
                let _ = writeln!(out, "levi_{name}{} {v}", with(&format!("quantile=\"{q}\"")));
            }
            let _ = writeln!(out, "levi_{name}_sum{label} {}", h.sum());
            let _ = writeln!(out, "levi_{name}_count{label} {}", h.count());
        }
        if !s.host_phases.is_empty() {
            let _ = writeln!(out, "# TYPE levi_host_ns gauge");
            for p in Phase::ALL {
                let _ = writeln!(
                    out,
                    "levi_host_ns{} {}",
                    with(&format!("phase=\"{}\"", p.name())),
                    s.host_phases.ns(p)
                );
            }
        }
        if !s.spans.is_empty() {
            let cp = s.spans.critical_path(TOP_SLOW_INVOKES);
            let t = &cp.totals;
            let _ = writeln!(out, "# TYPE levi_span_stage_cycles counter");
            for (stage, cycles) in [
                ("offload", t.offload),
                ("noc", t.noc),
                ("queue", t.queue),
                ("exec", t.exec),
                ("response", t.response),
            ] {
                let _ = writeln!(
                    out,
                    "levi_span_stage_cycles{} {cycles}",
                    with(&format!("stage=\"{stage}\""))
                );
            }
            let _ = writeln!(out, "# TYPE levi_span_rtt_cycles_total counter");
            let _ = writeln!(out, "levi_span_rtt_cycles_total{label} {}", cp.rtt_total);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn populated() -> Stats {
        let mut s = Stats::new();
        s.cycles = 1000;
        s.core_instrs = 4000;
        s.invokes = 3;
        s.invoke_rtt.record(40);
        s.invoke_rtt.record(64);
        s.spans = crate::span::SpanTable::new(true, 8);
        let id = s.spans.begin(0, 0).unwrap();
        let eng = crate::engine::EngineId {
            tile: 1,
            level: crate::engine::EngineLevel::Llc,
        };
        s.spans.note_issue(id, 2, eng, false);
        s.spans.note_arrival(id, 8);
        s.spans.note_dispatch(id, 8);
        s.spans.note_ack(id, 14);
        s.spans.note_retire(id, 40);
        s
    }

    #[test]
    fn jsonl_has_header_counters_histograms_and_spans() {
        let s = populated();
        let dump = Telemetry::new(&s).to_jsonl("unit/test");
        let lines: Vec<&str> = dump.lines().collect();
        assert!(lines[0].contains("\"telemetry\":{\"version\":1,\"scope\":\"unit/test\"}"));
        assert!(dump.contains("{\"metric\":\"cycles\",\"type\":\"counter\",\"value\":1000}"));
        assert!(dump.contains("\"metric\":\"invoke_rtt\",\"type\":\"histogram\",\"count\":2"));
        assert!(dump.contains("\"span_stage\":{\"stage\":\"exec\",\"cycles\":32}"));
        assert!(dump.contains("\"slow_invoke\":{\"rank\":1,\"span\":0,"));
        assert!(dump.contains("\"span_summary\":{\"recorded\":1,\"complete\":1,"));
        // Empty histograms are skipped.
        assert!(!dump.contains("\"metric\":\"dram_queue\""));
        // No host-phase lines without the self-profile feature's data.
        if s.host_phases.is_empty() {
            assert!(!dump.contains("host_ns_"));
        }
        // Every line is a single JSON object.
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
    }

    #[test]
    fn jsonl_scope_is_escaped() {
        let s = Stats::new();
        let dump = Telemetry::new(&s).to_jsonl("we\"ird\\scope");
        assert!(dump.starts_with("{\"telemetry\":"));
        assert!(dump.contains("we\\\"ird\\\\scope"));
    }

    #[test]
    fn prometheus_families_and_labels() {
        let s = populated();
        let text = Telemetry::new(&s).to_prometheus("fig05/Leviathan");
        assert!(text.contains("# TYPE levi_cycles counter"));
        assert!(text.contains("levi_cycles{scope=\"fig05/Leviathan\"} 1000"));
        assert!(text.contains("levi_invoke_rtt{scope=\"fig05/Leviathan\",quantile=\"0.5\"} 32"));
        assert!(text.contains("levi_invoke_rtt_count{scope=\"fig05/Leviathan\"} 2"));
        assert!(
            text.contains("levi_span_stage_cycles{scope=\"fig05/Leviathan\",stage=\"exec\"} 32")
        );

        let unscoped = Telemetry::new(&s).to_prometheus("");
        assert!(unscoped.contains("levi_cycles 1000"));
        assert!(unscoped.contains("levi_invoke_rtt{quantile=\"0.5\"} 32"));
    }

    #[test]
    fn counters_cover_span_and_trace_loss() {
        let s = populated();
        let counters = Telemetry::new(&s).counters();
        let get = |name: &str| {
            counters
                .iter()
                .find(|(n, _)| *n == name)
                .map(|&(_, v)| v)
                .unwrap_or_else(|| panic!("missing counter {name}"))
        };
        assert_eq!(get("spans_recorded"), 1);
        assert_eq!(get("spans_dropped"), 0);
        assert_eq!(get("trace_dropped"), 0);
        assert_eq!(get("invokes"), 3);
    }
}
