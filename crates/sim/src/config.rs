//! Machine configuration.
//!
//! [`MachineConfig::paper_default`] reproduces Table V of the paper: a
//! 16-tile multicore with private L1/L2, a shared inclusive NUCA LLC
//! (one 512 KB bank per tile), a 4×4 mesh NoC, four memory controllers,
//! and a Leviathan engine pair (L2 + LLC) per tile.

use crate::error::SimError;
use crate::fault::FaultPlan;

/// Cache line size in bytes. Fixed at 64 B across the hierarchy, as in the
/// paper's evaluation.
pub const LINE_SIZE: u64 = 64;

/// log2 of [`LINE_SIZE`].
pub const LINE_SHIFT: u32 = 6;

/// Geometry and latency of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes (per bank for the LLC).
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Access latency in cycles (tag + data, loaded on a hit).
    pub latency: u64,
    /// Replacement policy.
    pub replacement: Replacement,
}

impl CacheConfig {
    /// Number of sets implied by size, line size, and ways.
    pub fn sets(&self) -> u64 {
        self.size_bytes / LINE_SIZE / self.ways as u64
    }

    /// Number of lines.
    pub fn lines(&self) -> u64 {
        self.size_bytes / LINE_SIZE
    }
}

/// Cache replacement policies supported by [`crate::cache::CacheBank`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Replacement {
    /// Least-recently-used.
    Lru,
    /// Static re-reference interval prediction (2-bit SRRIP), standing in
    /// for the paper's (D)RRIP ("t̄r̄ip repl.").
    Srrip,
}

/// Core (OOO-approximating) model parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoreConfig {
    /// Instructions issued per cycle when dependencies allow.
    pub issue_width: u32,
    /// Maximum outstanding L1 misses (MSHRs); bounds memory-level
    /// parallelism.
    pub mshrs: u32,
    /// Penalty in cycles for a mispredicted branch.
    pub mispredict_penalty: u64,
    /// log2 of the gshare predictor's table size.
    pub predictor_bits: u32,
    /// Entries in the invoke buffer (Sec. VI-B1; Fig. 22 sweeps this).
    pub invoke_buffer: u32,
    /// Latency of an integer multiply.
    pub mul_latency: u64,
    /// Latency of an integer divide.
    pub div_latency: u64,
}

/// Near-data engine (dataflow fabric) parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineConfig {
    /// Integer functional units available per cycle (paper: 15).
    pub int_fus: u32,
    /// Memory functional units available per cycle (paper: 10).
    pub mem_fus: u32,
    /// Per-PE latency in cycles (paper: 1).
    pub pe_latency: u64,
    /// Task contexts per engine (paper: 32, split evenly between offloaded
    /// and data-triggered actions to avoid deadlock).
    pub contexts: u32,
    /// Engine L1d capacity in bytes (paper: 8 KB).
    pub l1d_bytes: u64,
    /// Engine L1d latency.
    pub l1d_latency: u64,
    /// When true, the engine is *idealized*: unlimited 0-cycle FUs and free
    /// instructions; only memory latency and data dependencies remain.
    pub idealized: bool,
}

/// Mesh network-on-chip parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NocConfig {
    /// Flit width in bits (paper: 128).
    pub flit_bits: u32,
    /// Per-hop router delay in cycles (paper: 2).
    pub router_delay: u64,
    /// Per-hop link delay in cycles (paper: 1).
    pub link_delay: u64,
}

/// Memory (DRAM) system parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemConfig {
    /// Number of memory controllers (paper: 4).
    pub controllers: u32,
    /// Fixed access latency in cycles (paper: 100).
    pub latency: u64,
    /// Cycles one controller is occupied per 64 B line, derived from the
    /// paper's 11.8 GB/s per controller at 2.4 GHz ⇒ ~13 cycles/line.
    pub cycles_per_line: u64,
    /// Entries in the per-controller FIFO line cache (paper: 32), used by
    /// Leviathan's DRAM object compaction.
    pub fifo_cache_lines: u32,
    /// Latency of a FIFO-cache hit.
    pub fifo_hit_latency: u64,
}

/// Per-event dynamic energy parameters, in picojoules.
///
/// Absolute values are representative of the literature the paper cites
/// (Jenga \[75\] for core/cache/NoC/DRAM, Repetti et al. \[60\] for the
/// engines); the evaluation only relies on *relative* energy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyConfig {
    /// Per retired core instruction (fetch/decode/OOO overheads included).
    pub core_inst_pj: f64,
    /// Per engine (dataflow PE) instruction.
    pub engine_inst_pj: f64,
    /// Per L1 access.
    pub l1_pj: f64,
    /// Per L2 access.
    pub l2_pj: f64,
    /// Per LLC bank access.
    pub llc_pj: f64,
    /// Per directory lookup/update.
    pub dir_pj: f64,
    /// Per NoC flit-hop.
    pub noc_flit_hop_pj: f64,
    /// Per DRAM line (64 B) access.
    pub dram_line_pj: f64,
    /// Per memory-controller FIFO-cache hit.
    pub mc_cache_pj: f64,
}

impl Default for EnergyConfig {
    fn default() -> Self {
        EnergyConfig {
            // An OOO core burns ~0.25 nJ of dynamic energy per retired
            // instruction (fetch/decode/rename/issue overheads dominate);
            // the dataflow engines are ~30x cheaper per op [60, 66].
            core_inst_pj: 250.0,
            engine_inst_pj: 8.0,
            l1_pj: 10.0,
            l2_pj: 30.0,
            llc_pj: 100.0,
            dir_pj: 10.0,
            noc_flit_hop_pj: 15.0,
            dram_line_pj: 15_000.0,
            mc_cache_pj: 50.0,
        }
    }
}

/// Complete machine configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct MachineConfig {
    /// Number of tiles (= cores = LLC banks). Must be a power of two whose
    /// square root is an integer or a 2:1 rectangle (mesh layout).
    pub tiles: u32,
    /// L1 data cache (per tile).
    pub l1: CacheConfig,
    /// L2 cache (per tile, private).
    pub l2: CacheConfig,
    /// LLC bank (per tile, shared & inclusive).
    pub llc: CacheConfig,
    /// Core model.
    pub core: CoreConfig,
    /// Engine model (one engine at the L2 and one at the LLC bank of every
    /// tile).
    pub engine: EngineConfig,
    /// NoC model.
    pub noc: NocConfig,
    /// Memory system.
    pub mem: MemConfig,
    /// Energy parameters.
    pub energy: EnergyConfig,
    /// Enable the L2 strided prefetcher.
    pub prefetcher: bool,
    /// Degree (lines fetched ahead) of the strided prefetcher.
    pub prefetch_degree: u32,
    /// Run-ahead quantum: how many cycles an actor may advance past the
    /// global clock before yielding. Smaller is more accurate, larger is
    /// faster.
    pub quantum: u64,
    /// Enable the structured event tracer ([`crate::trace::Tracer`]).
    /// Observational only: recorded cycles are identical either way.
    pub trace: bool,
    /// Ring-buffer capacity (events) when tracing is enabled.
    pub trace_capacity: usize,
    /// Also record invoke-scheduler decisions
    /// ([`TraceCategory::Sched`](crate::trace::TraceCategory)): placement
    /// (`sched.place`), NACKs (`sched.nack`), and the 1/32 migrate-local
    /// policy (`sched.migrate_local`). Off by default — and gated
    /// separately from [`MachineConfig::trace`] — so default traced runs
    /// stay byte-identical across simulator versions. Has no effect
    /// unless `trace` is also enabled.
    pub trace_sched: bool,
    /// Record causal invoke-lifecycle spans
    /// ([`crate::span::SpanTable`]): per-invoke stage cycle marks for the
    /// post-run critical-path analyzer, plus `span.*` stage events in the
    /// tracer (when `trace` is also on) joined by Perfetto flow arrows.
    /// Off by default — and gated separately from
    /// [`MachineConfig::trace`] — so default runs (traced or not) stay
    /// byte-identical across simulator versions. The span table retains
    /// at most [`crate::span::DEFAULT_SPAN_CAPACITY`] spans.
    pub trace_spans: bool,
    /// Time-series sampling interval in cycles
    /// ([`crate::stats::TimeSeries`]); 0 disables sampling.
    pub sample_interval: u64,
    /// Deterministic fault-injection schedule
    /// ([`crate::fault::FaultPlan`]); `None` (the default) injects nothing
    /// and leaves every simulator code path untouched.
    pub fault_plan: Option<FaultPlan>,
    /// Watchdog: abort the run with
    /// [`RunError::Watchdog`](crate::machine::RunError::Watchdog) if the
    /// simulated clock passes this many cycles. 0 (the default) disables
    /// the watchdog.
    pub max_cycles: u64,
    /// Take a full machine checkpoint every this many cycles (0, the
    /// default, disables checkpointing; the scheduler hook is then a
    /// single always-false compare). The most recent checkpoint is kept
    /// in [`Machine::last_checkpoint`](crate::Machine::last_checkpoint).
    pub checkpoint_every: u64,
    /// After a successful run that captured at least one mid-run
    /// checkpoint, restore a replica from the latest checkpoint, run it
    /// to completion, and fail with
    /// [`RunError::SnapshotDivergence`](crate::RunError) unless the
    /// replica's final cycle count and stats digest match the primary
    /// run exactly. Off by default; costs roughly one partial re-run.
    pub checkpoint_verify: bool,
    /// Address-translation model ([`crate::xlat`]): per-tile TLBs plus
    /// timed page walks charged through the NoC and DRAM. `None` (the
    /// default) leaves the probe paths untouched — a single predictable
    /// branch, like the checkpoint hook.
    pub xlat: Option<crate::xlat::XlatConfig>,
    /// Multi-tenant sharing ([`crate::xlat`]): tiles split into equal
    /// contiguous blocks that share the LLC and invoke engines under a
    /// [`TenantPolicy`](crate::xlat::TenantPolicy). `None` (the default)
    /// models a single tenant owning the machine.
    pub tenants: Option<crate::xlat::TenantConfig>,
}

impl MachineConfig {
    /// The paper's Table V configuration (16 tiles).
    pub fn paper_default() -> Self {
        Self::with_tiles(16)
    }

    /// Table V scaled to a different tile count (Fig. 25 sweeps this).
    pub fn with_tiles(tiles: u32) -> Self {
        assert!(tiles.is_power_of_two(), "tile count must be a power of two");
        MachineConfig {
            tiles,
            l1: CacheConfig {
                size_bytes: 32 * 1024,
                ways: 8,
                latency: 2,
                replacement: Replacement::Lru,
            },
            l2: CacheConfig {
                size_bytes: 128 * 1024,
                ways: 8,
                latency: 6, // 2-cycle tag + 4-cycle data
                replacement: Replacement::Srrip,
            },
            llc: CacheConfig {
                size_bytes: 512 * 1024,
                ways: 16,
                latency: 8, // 3-cycle tag + 5-cycle data
                replacement: Replacement::Srrip,
            },
            core: CoreConfig {
                issue_width: 4,
                mshrs: 10,
                mispredict_penalty: 14,
                predictor_bits: 12,
                invoke_buffer: 4,
                mul_latency: 3,
                div_latency: 20,
            },
            engine: EngineConfig {
                int_fus: 15,
                mem_fus: 10,
                pe_latency: 1,
                contexts: 32,
                l1d_bytes: 8 * 1024,
                l1d_latency: 1,
                idealized: false,
            },
            noc: NocConfig {
                flit_bits: 128,
                router_delay: 2,
                link_delay: 1,
            },
            mem: MemConfig {
                controllers: 4,
                latency: 100,
                cycles_per_line: 13,
                fifo_cache_lines: 32,
                fifo_hit_latency: 6,
            },
            energy: EnergyConfig::default(),
            prefetcher: true,
            prefetch_degree: 2,
            quantum: 64,
            trace: false,
            trace_capacity: crate::trace::DEFAULT_TRACE_CAPACITY,
            trace_sched: false,
            trace_spans: false,
            sample_interval: 0,
            fault_plan: None,
            max_cycles: 0,
            checkpoint_every: 0,
            checkpoint_verify: false,
            xlat: None,
            tenants: None,
        }
    }

    /// Mesh dimensions `(cols, rows)` for the tile count.
    pub fn mesh_dims(&self) -> (u32, u32) {
        let mut cols = 1u32;
        while cols * cols < self.tiles {
            cols *= 2;
        }
        let rows = self.tiles / cols;
        (cols, rows)
    }

    /// Total LLC capacity across banks.
    pub fn llc_total_bytes(&self) -> u64 {
        self.llc.size_bytes * self.tiles as u64
    }

    /// Switches both engines on every tile into idealized mode.
    pub fn idealized(mut self) -> Self {
        self.engine.idealized = true;
        self
    }

    /// Enables the structured event tracer (default ring capacity).
    pub fn traced(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Enables the tracer *and* the invoke-scheduler decision events
    /// (`sched.place` / `sched.nack` / `sched.migrate_local` in the
    /// `sched` category).
    pub fn sched_traced(mut self) -> Self {
        self.trace = true;
        self.trace_sched = true;
        self
    }

    /// Enables the tracer *and* causal invoke-lifecycle spans: the
    /// [`SpanTable`](crate::span::SpanTable) fills for the critical-path
    /// analyzer and `span.*` stage events land in the `span` trace
    /// category, flow-linked in the Perfetto export.
    pub fn span_traced(mut self) -> Self {
        self.trace = true;
        self.trace_spans = true;
        self
    }

    /// Enables time-series sampling every `interval` cycles.
    pub fn sampled(mut self, interval: u64) -> Self {
        self.sample_interval = interval;
        self
    }

    /// Attaches a deterministic fault-injection plan.
    pub fn faulted(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Enables the forward-progress watchdog: runs abort with
    /// [`RunError::Watchdog`](crate::machine::RunError::Watchdog) past
    /// `max_cycles` simulated cycles.
    pub fn watchdog(mut self, max_cycles: u64) -> Self {
        self.max_cycles = max_cycles;
        self
    }

    /// Enables periodic checkpointing every `cycles` simulated cycles
    /// (0 disables it). See
    /// [`Machine::checkpoint`](crate::Machine::checkpoint).
    pub fn checkpoint_every(mut self, cycles: u64) -> Self {
        self.checkpoint_every = cycles;
        self
    }

    /// Enables post-run checkpoint verification: restore a replica from
    /// the latest mid-run checkpoint, run it to completion, and fail on
    /// any divergence from the primary run.
    pub fn checkpoint_verified(mut self) -> Self {
        self.checkpoint_verify = true;
        self
    }

    /// Enables the address-translation model: per-tile TLBs with timed
    /// page walks (see [`crate::xlat`]).
    pub fn xlat(mut self, x: crate::xlat::XlatConfig) -> Self {
        self.xlat = Some(x);
        self
    }

    /// Splits the machine between co-running tenants under the given
    /// sharing policy (see [`crate::xlat`]).
    pub fn tenants(mut self, t: crate::xlat::TenantConfig) -> Self {
        self.tenants = Some(t);
        self
    }

    /// Validates the configuration, returning a typed error describing the
    /// first offending field combination.
    ///
    /// [`Machine::try_new`](crate::Machine::try_new) runs this check and
    /// returns the error.
    pub fn validate(&self) -> Result<(), SimError> {
        let bad = |what: String| Err(SimError::InvalidConfig { what });
        if self.tiles == 0 || !self.tiles.is_power_of_two() {
            return bad(format!("tile count {} must be a power of two", self.tiles));
        }
        for (name, c) in [("L1", &self.l1), ("L2", &self.l2), ("LLC", &self.llc)] {
            if c.ways == 0 {
                return bad(format!("{name} associativity must be positive"));
            }
            let set_bytes = LINE_SIZE * c.ways as u64;
            if c.size_bytes == 0 || c.size_bytes % set_bytes != 0 {
                return bad(format!(
                    "{name} size {} must be a positive multiple of line x ways ({set_bytes} B)",
                    c.size_bytes
                ));
            }
        }
        if self.core.issue_width == 0 {
            return bad("core issue width must be positive".to_string());
        }
        if self.core.mshrs == 0 {
            return bad("core MSHR count must be positive".to_string());
        }
        if self.core.invoke_buffer == 0 {
            return bad("invoke buffer must have at least one entry".to_string());
        }
        if self.engine.int_fus == 0 || self.engine.mem_fus == 0 {
            return bad("engine FU counts must be positive".to_string());
        }
        if self.engine.contexts == 0 {
            return bad("engine context count must be positive".to_string());
        }
        let e_set_bytes = LINE_SIZE * 4; // engine L1d is fixed 4-way
        if self.engine.l1d_bytes == 0 || !self.engine.l1d_bytes.is_multiple_of(e_set_bytes) {
            return bad(format!(
                "engine L1d size {} must be a positive multiple of {e_set_bytes} B",
                self.engine.l1d_bytes
            ));
        }
        if self.noc.flit_bits < 8 || !self.noc.flit_bits.is_multiple_of(8) {
            return bad(format!(
                "NoC flit width {} must be a positive multiple of 8 bits",
                self.noc.flit_bits
            ));
        }
        if self.mem.controllers == 0 {
            return bad("memory controller count must be positive".to_string());
        }
        if self.mem.cycles_per_line == 0 {
            return bad("DRAM cycles-per-line must be positive".to_string());
        }
        if self.quantum == 0 {
            return bad("run-ahead quantum must be positive".to_string());
        }
        if let Some(x) = &self.xlat {
            if x.page_bits < LINE_SHIFT || x.page_bits > 30 {
                return bad(format!(
                    "xlat page_bits {} must lie in {LINE_SHIFT}..=30 (line..1 GiB)",
                    x.page_bits
                ));
            }
            if x.tlb_ways == 0 || x.tlb_entries == 0 || !x.tlb_entries.is_multiple_of(x.tlb_ways) {
                return bad(format!(
                    "TLB geometry {}x{} ways must be positive with ways dividing entries",
                    x.tlb_entries, x.tlb_ways
                ));
            }
            if x.walk_levels == 0 || x.walk_levels > 6 {
                return bad(format!(
                    "xlat walk_levels {} must lie in 1..=6",
                    x.walk_levels
                ));
            }
        }
        if let Some(t) = &self.tenants {
            if t.count == 0 || t.count > 8 {
                return bad(format!("tenant count {} must lie in 1..=8", t.count));
            }
            if !self.tiles.is_multiple_of(t.count) {
                return bad(format!(
                    "tenant count {} must divide the tile count {}",
                    t.count, self.tiles
                ));
            }
            if t.policy == crate::xlat::TenantPolicy::LlcWayPartition
                && !self.llc.ways.is_multiple_of(t.count)
            {
                return bad(format!(
                    "LLC way-partitioning needs tenant count {} to divide LLC ways {}",
                    t.count, self.llc.ways
                ));
            }
        }
        if let Some(plan) = &self.fault_plan {
            plan.validate(self)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table_v() {
        let cfg = MachineConfig::paper_default();
        assert_eq!(cfg.tiles, 16);
        assert_eq!(cfg.l1.size_bytes, 32 * 1024);
        assert_eq!(cfg.l1.ways, 8);
        assert_eq!(cfg.l2.size_bytes, 128 * 1024);
        assert_eq!(cfg.llc.size_bytes, 512 * 1024);
        assert_eq!(cfg.llc.ways, 16);
        assert_eq!(cfg.llc_total_bytes(), 8 * 1024 * 1024, "8 MB LLC");
        assert_eq!(cfg.mem.controllers, 4);
        assert_eq!(cfg.mem.latency, 100);
        assert_eq!(cfg.engine.int_fus, 15);
        assert_eq!(cfg.engine.mem_fus, 10);
        assert_eq!(cfg.engine.contexts, 32);
        assert_eq!(cfg.core.invoke_buffer, 4);
    }

    #[test]
    fn mesh_dims_square_and_rect() {
        assert_eq!(MachineConfig::with_tiles(16).mesh_dims(), (4, 4));
        assert_eq!(MachineConfig::with_tiles(64).mesh_dims(), (8, 8));
        assert_eq!(MachineConfig::with_tiles(8).mesh_dims(), (4, 2));
        assert_eq!(MachineConfig::with_tiles(4).mesh_dims(), (2, 2));
        assert_eq!(MachineConfig::with_tiles(32).mesh_dims(), (8, 4));
    }

    #[test]
    fn cache_geometry() {
        let cfg = MachineConfig::paper_default();
        assert_eq!(cfg.l1.sets(), 64);
        assert_eq!(cfg.l1.lines(), 512);
        assert_eq!(cfg.llc.sets(), 512);
        assert_eq!(cfg.llc.lines(), 8192, "8K lines per bank (Table IV)");
    }

    #[test]
    fn idealized_flag() {
        let cfg = MachineConfig::paper_default().idealized();
        assert!(cfg.engine.idealized);
    }

    #[test]
    fn tracing_builders() {
        let cfg = MachineConfig::with_tiles(4);
        assert!(!cfg.trace && !cfg.trace_sched && !cfg.trace_spans);
        let cfg = MachineConfig::with_tiles(4).span_traced();
        assert!(cfg.trace && cfg.trace_spans && !cfg.trace_sched);
        let cfg = MachineConfig::with_tiles(4).sched_traced();
        assert!(cfg.trace && cfg.trace_sched && !cfg.trace_spans);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_tiles_rejected() {
        MachineConfig::with_tiles(12);
    }

    #[test]
    fn validate_accepts_defaults_and_catches_bad_fields() {
        assert!(MachineConfig::paper_default().validate().is_ok());
        assert!(MachineConfig::with_tiles(4).idealized().validate().is_ok());

        let mut cfg = MachineConfig::with_tiles(4);
        cfg.core.invoke_buffer = 0;
        let err = cfg.validate().unwrap_err();
        assert!(err.to_string().contains("invoke buffer"), "{err}");

        let mut cfg = MachineConfig::with_tiles(4);
        cfg.quantum = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = MachineConfig::with_tiles(4);
        cfg.l1.size_bytes = 1000; // not a multiple of line x ways
        assert!(cfg.validate().is_err());

        let mut cfg = MachineConfig::with_tiles(4);
        cfg.noc.flit_bits = 12;
        assert!(cfg.validate().is_err());

        let mut cfg = MachineConfig::with_tiles(4);
        cfg.mem.controllers = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn fault_plan_builder_and_validation() {
        use crate::fault::{CycleWindow, FaultPlan};
        let cfg = MachineConfig::with_tiles(4)
            .faulted(FaultPlan::new(7).add_invoke_squeeze(CycleWindow::new(0, 100), 1))
            .watchdog(1_000_000);
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.max_cycles, 1_000_000);
        assert_eq!(cfg.fault_plan.as_ref().unwrap().seed, 7);

        // An invalid plan makes the whole config invalid.
        let cfg = MachineConfig::with_tiles(4).faulted(FaultPlan::new(0).add_dram_fault(
            99,
            CycleWindow::new(0, 10),
            2,
        ));
        assert!(cfg.validate().is_err());
    }
}
